/* Accelerated exploration kernel: the compiled twin of _pycore.PyKernel.
 *
 * One KernelState holds the interned configuration rows (fixed-width
 * uint32 fields, one per process local state / process status / object
 * state — the packed encoding of repro.analysis.kernel.encoding), an
 * open-addressing row hash table, the per-(pid, local[, object-state])
 * invoke and delta tables, and the recorded adjacency lists. The BFS
 * (run_bfs) runs entirely in C; protocol semantics reach it two ways:
 *
 * - load_tables bulk-ingests compiled protocol tables (see
 *   repro.analysis.kernel.tables) ahead of exploration;
 * - on a table miss the kernel calls back into the explorer
 *   (resolve_invoke / compute_deltas) exactly once per key — the
 *   not-yet-compiled fallback sentinel is simply an empty map slot.
 *
 * run_bfs expands each frontier in two phases: a *plan* phase that
 * computes every successor row from the tables alone — pure C over
 * immutable state, so the GIL is released and the frontier can be
 * partitioned across OS threads — and a serial *commit* phase that
 * interns the planned rows in frontier order (falling back to the
 * GIL-holding callbacks for cids whose tables missed). Because the
 * commit replays the exact serial discovery sequence, configuration
 * ids, edge order, budget truncation, orders, parents, and digests
 * are byte-identical across backends, table/callback modes, and
 * thread counts.
 *
 * All heap state uses the PyMem_Raw* allocators, which are legal
 * without the GIL; the low-level helpers never set Python errors
 * (GIL-holding boundaries raise MemoryError after the fact).
 *
 * Built best-effort: setup.py marks the extension optional, and
 * `make kernel-ext` (repro.analysis.kernel._build) compiles it in
 * place with the running interpreter's headers. Absence of this module
 * is never an error — kernel selection falls back to "python" unless
 * the compiled backend was requested explicitly.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

#ifndef _WIN32
#include <pthread.h>
#define REPRO_KERNEL_PTHREADS 1
#endif

/* Must match repro.analysis.kernel.encoding.FIELD_BITS: slot codes are
 * allocated below 1 << 24, so they always fit a uint32 field. */
#define FIELD_BITS 24

/* Upper bound for --kernel-threads: beyond this, frontier partitioning
 * overhead dwarfs any win on the graph sizes the explorer bounds. */
#define MAX_PLAN_THREADS 16

/* ---------------------------------------------------------------------
 * Growable int32 buffer
 * ------------------------------------------------------------------ */

typedef struct {
    int32_t *data;
    Py_ssize_t len;
    Py_ssize_t cap;
} IntBuf;

/* The intbuf/u64map/grow/intern helpers below are called with the GIL
 * released (plan/commit phases), so on allocation failure they return
 * -1 WITHOUT setting a Python error; GIL-holding boundaries translate
 * that into MemoryError. */

static int
intbuf_init(IntBuf *buf, Py_ssize_t cap)
{
    buf->data = PyMem_RawMalloc((size_t)cap * sizeof(int32_t));
    if (buf->data == NULL) {
        return -1;
    }
    buf->len = 0;
    buf->cap = cap;
    return 0;
}

static void
intbuf_free(IntBuf *buf)
{
    PyMem_RawFree(buf->data);
    buf->data = NULL;
    buf->len = buf->cap = 0;
}

static int
intbuf_reserve(IntBuf *buf, Py_ssize_t extra)
{
    if (buf->len + extra <= buf->cap) {
        return 0;
    }
    Py_ssize_t cap = buf->cap ? buf->cap : 8;
    while (cap < buf->len + extra) {
        cap *= 2;
    }
    int32_t *data = PyMem_RawRealloc(buf->data, (size_t)cap * sizeof(int32_t));
    if (data == NULL) {
        return -1;
    }
    buf->data = data;
    buf->cap = cap;
    return 0;
}

static inline int
intbuf_push(IntBuf *buf, int32_t value)
{
    if (buf->len >= buf->cap && intbuf_reserve(buf, 1) < 0) {
        return -1;
    }
    buf->data[buf->len++] = value;
    return 0;
}

/* ---------------------------------------------------------------------
 * uint64 -> int32 open-addressing map (invoke and delta tables)
 * ------------------------------------------------------------------ */

typedef struct {
    uint64_t key;
    int32_t value; /* -1 marks an empty slot; stored values are >= 0 */
} U64Entry;

typedef struct {
    U64Entry *entries;
    Py_ssize_t size; /* power of two */
    Py_ssize_t count;
} U64Map;

static int
u64map_init(U64Map *map, Py_ssize_t size)
{
    map->entries = PyMem_RawMalloc((size_t)size * sizeof(U64Entry));
    if (map->entries == NULL) {
        return -1;
    }
    for (Py_ssize_t i = 0; i < size; i++) {
        map->entries[i].value = -1;
    }
    map->size = size;
    map->count = 0;
    return 0;
}

static void
u64map_free(U64Map *map)
{
    PyMem_RawFree(map->entries);
    map->entries = NULL;
    map->size = map->count = 0;
}

static inline uint64_t
u64_mix(uint64_t key)
{
    /* splitmix64 finalizer: full avalanche over the packed key bits. */
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    key ^= key >> 31;
    return key;
}

static inline int32_t
u64map_get(const U64Map *map, uint64_t key)
{
    Py_ssize_t mask = map->size - 1;
    Py_ssize_t index = (Py_ssize_t)(u64_mix(key) & (uint64_t)mask);
    for (;;) {
        const U64Entry *entry = &map->entries[index];
        if (entry->value < 0) {
            return -1;
        }
        if (entry->key == key) {
            return entry->value;
        }
        index = (index + 1) & mask;
    }
}

static int
u64map_set(U64Map *map, uint64_t key, int32_t value)
{
    if (map->count * 3 >= map->size * 2) {
        Py_ssize_t new_size = map->size * 2;
        U64Entry *old = map->entries;
        Py_ssize_t old_size = map->size;
        if (u64map_init(map, new_size) < 0) {
            map->entries = old;
            map->size = old_size;
            return -1;
        }
        for (Py_ssize_t i = 0; i < old_size; i++) {
            if (old[i].value >= 0) {
                Py_ssize_t mask = map->size - 1;
                Py_ssize_t index =
                    (Py_ssize_t)(u64_mix(old[i].key) & (uint64_t)mask);
                while (map->entries[index].value >= 0) {
                    index = (index + 1) & mask;
                }
                map->entries[index] = old[i];
                map->count++;
            }
        }
        PyMem_RawFree(old);
    }
    Py_ssize_t mask = map->size - 1;
    Py_ssize_t index = (Py_ssize_t)(u64_mix(key) & (uint64_t)mask);
    for (;;) {
        U64Entry *entry = &map->entries[index];
        if (entry->value < 0) {
            entry->key = key;
            entry->value = value;
            map->count++;
            return 0;
        }
        if (entry->key == key) {
            entry->value = value;
            return 0;
        }
        index = (index + 1) & mask;
    }
}

/* ---------------------------------------------------------------------
 * Delta sets: the memoized outcomes of one (pid, local, obj_code) key
 * ------------------------------------------------------------------ */

typedef struct {
    int32_t n;      /* number of outcomes */
    uint32_t *vals; /* n * 4: eid, new_local, new_status, new_obj */
} DeltaSet;

/* ---------------------------------------------------------------------
 * KernelState
 * ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    int n_fields;
    int n_processes;
    PyObject *resolve_invoke;
    PyObject *compute_deltas;
    /* Interned rows: row_count * n_fields uint32 codes. */
    uint32_t *rows;
    /* Per-row hash, cached at intern time so table growth re-buckets
     * without rehashing row bytes (the cold-path hot spot). */
    uint64_t *row_hashes;
    Py_ssize_t row_count;
    Py_ssize_t row_cap;
    /* Row hash table: open addressing over cids, -1 empty. */
    int32_t *table;
    Py_ssize_t table_size; /* power of two */
    /* Adjacency per cid: flat [eid, tid, ...]; len < 0 = unexpanded. */
    int32_t **adj;
    int32_t *adj_len;
    U64Map invoke; /* (pid << 24 | local) -> object index */
    U64Map deltas; /* (pid << 48 | local << 24 | obj) -> delta set id */
    DeltaSet *delta_sets;
    Py_ssize_t ds_count;
    Py_ssize_t ds_cap;
    /* Scratch rows (n_fields each): stable source copy + successor. */
    uint32_t *src_row;
    uint32_t *scratch;
} KernelState;

static inline uint64_t
row_hash(const uint32_t *row, int n_fields)
{
    /* FNV-1a, one step per uint32 field (field-granular is 4x fewer
     * multiplies than byte-granular and just as well distributed for
     * small slot codes). Internal only — never leaves the process. */
    uint64_t hash = 1469598103934665603ULL;
    for (int i = 0; i < n_fields; i++) {
        hash ^= row[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

static int
kernel_grow_rows(KernelState *self)
{
    Py_ssize_t cap = self->row_cap * 2;
    uint32_t *rows = PyMem_RawRealloc(
        self->rows, (size_t)cap * (size_t)self->n_fields * sizeof(uint32_t));
    if (rows == NULL) {
        return -1;
    }
    self->rows = rows;
    uint64_t *hashes = PyMem_RawRealloc(self->row_hashes,
                                        (size_t)cap * sizeof(uint64_t));
    if (hashes == NULL) {
        return -1;
    }
    self->row_hashes = hashes;
    int32_t **adj = PyMem_RawRealloc(self->adj, (size_t)cap * sizeof(int32_t *));
    if (adj == NULL) {
        return -1;
    }
    self->adj = adj;
    int32_t *adj_len =
        PyMem_RawRealloc(self->adj_len, (size_t)cap * sizeof(int32_t));
    if (adj_len == NULL) {
        return -1;
    }
    self->adj_len = adj_len;
    for (Py_ssize_t i = self->row_cap; i < cap; i++) {
        self->adj[i] = NULL;
        self->adj_len[i] = -1;
    }
    self->row_cap = cap;
    return 0;
}

static int
kernel_grow_table(KernelState *self)
{
    /* Grow 4x: cached row hashes make re-bucketing cheap, so fewer,
     * larger growth steps win on the cold path. */
    Py_ssize_t new_size = self->table_size * 4;
    int32_t *table = PyMem_RawMalloc((size_t)new_size * sizeof(int32_t));
    if (table == NULL) {
        return -1;
    }
    for (Py_ssize_t i = 0; i < new_size; i++) {
        table[i] = -1;
    }
    Py_ssize_t mask = new_size - 1;
    for (Py_ssize_t cid = 0; cid < self->row_count; cid++) {
        Py_ssize_t index =
            (Py_ssize_t)(self->row_hashes[cid] & (uint64_t)mask);
        while (table[index] >= 0) {
            index = (index + 1) & mask;
        }
        table[index] = (int32_t)cid;
    }
    PyMem_RawFree(self->table);
    self->table = table;
    self->table_size = new_size;
    return 0;
}

/* The cid of `row`, interning it if new; -1 on memory error. */
static Py_ssize_t
kernel_intern(KernelState *self, const uint32_t *row)
{
    int n_fields = self->n_fields;
    Py_ssize_t mask = self->table_size - 1;
    uint64_t hash = row_hash(row, n_fields);
    Py_ssize_t index = (Py_ssize_t)(hash & (uint64_t)mask);
    for (;;) {
        int32_t cid = self->table[index];
        if (cid < 0) {
            break;
        }
        if (self->row_hashes[cid] == hash &&
            memcmp(self->rows + (Py_ssize_t)cid * n_fields, row,
                   (size_t)n_fields * sizeof(uint32_t)) == 0) {
            return cid;
        }
        index = (index + 1) & mask;
    }
    Py_ssize_t cid = self->row_count;
    if (cid >= self->row_cap && kernel_grow_rows(self) < 0) {
        return -1;
    }
    memcpy(self->rows + cid * n_fields, row,
           (size_t)n_fields * sizeof(uint32_t));
    self->row_hashes[cid] = hash;
    self->row_count++;
    self->table[index] = (int32_t)cid;
    if (self->row_count * 3 >= self->table_size * 2 &&
        kernel_grow_table(self) < 0) {
        return -1;
    }
    return cid;
}

/* The cid of `row`, or -1 when absent (never interns). */
static Py_ssize_t
kernel_find(const KernelState *self, const uint32_t *row)
{
    int n_fields = self->n_fields;
    Py_ssize_t mask = self->table_size - 1;
    uint64_t hash = row_hash(row, n_fields);
    Py_ssize_t index = (Py_ssize_t)(hash & (uint64_t)mask);
    for (;;) {
        int32_t cid = self->table[index];
        if (cid < 0) {
            return -1;
        }
        if (self->row_hashes[cid] == hash &&
            memcmp(self->rows + (Py_ssize_t)cid * n_fields, row,
                   (size_t)n_fields * sizeof(uint32_t)) == 0) {
            return cid;
        }
        index = (index + 1) & mask;
    }
}

/* Parse a Python sequence of ints into `out` (n_fields uint32 codes). */
static int
kernel_parse_row(KernelState *self, PyObject *codes, uint32_t *out)
{
    PyObject *fast = PySequence_Fast(codes, "expected a sequence of codes");
    if (fast == NULL) {
        return -1;
    }
    if (PySequence_Fast_GET_SIZE(fast) != self->n_fields) {
        Py_DECREF(fast);
        PyErr_Format(PyExc_ValueError, "expected %d codes", self->n_fields);
        return -1;
    }
    PyObject **items = PySequence_Fast_ITEMS(fast);
    for (int i = 0; i < self->n_fields; i++) {
        long code = PyLong_AsLong(items[i]);
        if (code == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        if (code < 0 || code >= (1L << FIELD_BITS)) {
            Py_DECREF(fast);
            PyErr_Format(PyExc_ValueError, "code %ld out of range", code);
            return -1;
        }
        out[i] = (uint32_t)code;
    }
    Py_DECREF(fast);
    return 0;
}

/* Resolve the delta set for (pid, local, obj_index, obj_code), calling
 * back into Python on the first miss. Returns the delta-set id, -1 on
 * error. */
/* Parse `outcomes` — a sequence of (eid, new_local, new_status,
 * new_obj) 4-tuples — into a new delta set registered under `dkey`.
 * Shared by the first-miss callback path and load_tables. Returns the
 * delta-set id, -1 with a Python error set. GIL held. */
static Py_ssize_t
kernel_store_delta_set(KernelState *self, uint64_t dkey, PyObject *outcomes)
{
    PyObject *fast =
        PySequence_Fast(outcomes, "delta outcomes must be a sequence");
    if (fast == NULL) {
        return -1;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    uint32_t *vals = PyMem_RawMalloc((size_t)(n ? n : 1) * 4 * sizeof(uint32_t));
    if (vals == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return -1;
    }
    PyObject **items = PySequence_Fast_ITEMS(fast);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *entry = items[i];
        if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) != 4) {
            PyMem_RawFree(vals);
            Py_DECREF(fast);
            PyErr_SetString(PyExc_TypeError,
                            "delta outcomes must be 4-tuples");
            return -1;
        }
        for (int k = 0; k < 4; k++) {
            long value = PyLong_AsLong(PyTuple_GET_ITEM(entry, k));
            if (value == -1 && PyErr_Occurred()) {
                PyMem_RawFree(vals);
                Py_DECREF(fast);
                return -1;
            }
            if (value < 0 || value > (long)UINT32_MAX) {
                PyMem_RawFree(vals);
                Py_DECREF(fast);
                PyErr_Format(PyExc_ValueError,
                             "delta value %ld out of range", value);
                return -1;
            }
            vals[i * 4 + k] = (uint32_t)value;
        }
    }
    Py_DECREF(fast);
    if (self->ds_count >= self->ds_cap) {
        Py_ssize_t cap = self->ds_cap ? self->ds_cap * 2 : 64;
        DeltaSet *sets =
            PyMem_RawRealloc(self->delta_sets, (size_t)cap * sizeof(DeltaSet));
        if (sets == NULL) {
            PyMem_RawFree(vals);
            PyErr_NoMemory();
            return -1;
        }
        self->delta_sets = sets;
        self->ds_cap = cap;
    }
    Py_ssize_t index = self->ds_count;
    self->delta_sets[index].n = (int32_t)n;
    self->delta_sets[index].vals = vals;
    self->ds_count++;
    if (u64map_set(&self->deltas, dkey, (int32_t)index) < 0) {
        PyErr_NoMemory();
        return -1;
    }
    return index;
}

static Py_ssize_t
kernel_delta_set(KernelState *self, int pid, uint32_t local, int obj_index,
                 uint32_t obj_code)
{
    uint64_t ikey = ((uint64_t)pid << FIELD_BITS) | local;
    uint64_t dkey = (ikey << FIELD_BITS) | obj_code;
    int32_t dsi = u64map_get(&self->deltas, dkey);
    if (dsi >= 0) {
        return dsi;
    }
    PyObject *result = PyObject_CallFunction(
        self->compute_deltas, "iiiI", pid, (int)local, obj_index,
        (unsigned int)obj_code);
    if (result == NULL) {
        return -1;
    }
    Py_ssize_t index = kernel_store_delta_set(self, dkey, result);
    Py_DECREF(result);
    return index;
}

/* Resolve the invoked object index for (pid, local), calling back into
 * Python on the first miss. Returns the index, -1 on error. */
static int
kernel_invoke_index(KernelState *self, int pid, uint32_t local)
{
    uint64_t ikey = ((uint64_t)pid << FIELD_BITS) | local;
    int32_t obj_index = u64map_get(&self->invoke, ikey);
    if (obj_index >= 0) {
        return obj_index;
    }
    PyObject *result = PyObject_CallFunction(self->resolve_invoke, "ii", pid,
                                             (int)local);
    if (result == NULL) {
        return -1;
    }
    long value = PyLong_AsLong(result);
    Py_DECREF(result);
    if (value == -1 && PyErr_Occurred()) {
        return -1;
    }
    if (value < 0 || 2 * self->n_processes + value >= self->n_fields) {
        PyErr_Format(PyExc_ValueError, "object index %ld out of range", value);
        return -1;
    }
    if (u64map_set(&self->invoke, ikey, (int32_t)value) < 0) {
        PyErr_NoMemory();
        return -1;
    }
    return (int)value;
}

/* Expand one pid of `cid` into `entries` as flat (eid, tid) pairs.
 * The source row must already be copied into self->src_row (interning
 * successors may reallocate the rows arena). Returns 0/-1. */
static int
kernel_expand_pid_into(KernelState *self, int pid, IntBuf *entries)
{
    int n = self->n_processes;
    const uint32_t *src = self->src_row;
    if (src[n + pid] != 0) {
        return 0; /* status != RUNNING: nothing enabled */
    }
    uint32_t local = src[pid];
    int obj_index = kernel_invoke_index(self, pid, local);
    if (obj_index < 0) {
        return -1;
    }
    uint32_t obj_code = src[2 * n + obj_index];
    Py_ssize_t dsi = kernel_delta_set(self, pid, local, obj_index, obj_code);
    if (dsi < 0) {
        return -1;
    }
    /* The callback cannot re-enter this kernel, so the delta set and
     * the source copy stay valid across the loop. */
    const DeltaSet *set = &self->delta_sets[dsi];
    int n_fields = self->n_fields;
    for (int32_t i = 0; i < set->n; i++) {
        const uint32_t *vals = set->vals + (Py_ssize_t)i * 4;
        memcpy(self->scratch, src, (size_t)n_fields * sizeof(uint32_t));
        self->scratch[pid] = vals[1];
        self->scratch[n + pid] = vals[2];
        self->scratch[2 * n + obj_index] = vals[3];
        Py_ssize_t tid = kernel_intern(self, self->scratch);
        if (tid < 0) {
            return -1;
        }
        if (intbuf_push(entries, (int32_t)vals[0]) < 0 ||
            intbuf_push(entries, (int32_t)tid) < 0) {
            return -1;
        }
    }
    return 0;
}

/* Compute and record the full adjacency of `cid`. Returns 0/-1 with a
 * Python error set (GIL held: this is the callback path). */
static int
kernel_expand_new(KernelState *self, Py_ssize_t cid)
{
    memcpy(self->src_row, self->rows + cid * self->n_fields,
           (size_t)self->n_fields * sizeof(uint32_t));
    IntBuf entries;
    if (intbuf_init(&entries, 16) < 0) {
        PyErr_NoMemory();
        return -1;
    }
    for (int pid = 0; pid < self->n_processes; pid++) {
        if (kernel_expand_pid_into(self, pid, &entries) < 0) {
            intbuf_free(&entries);
            if (!PyErr_Occurred()) {
                PyErr_NoMemory();
            }
            return -1;
        }
    }
    int32_t *flat = NULL;
    if (entries.len) {
        flat = PyMem_RawMalloc((size_t)entries.len * sizeof(int32_t));
        if (flat == NULL) {
            intbuf_free(&entries);
            PyErr_NoMemory();
            return -1;
        }
        memcpy(flat, entries.data, (size_t)entries.len * sizeof(int32_t));
    }
    self->adj[cid] = flat;
    self->adj_len[cid] = (int32_t)entries.len;
    intbuf_free(&entries);
    return 0;
}

static PyObject *
intbuf_as_list(const int32_t *data, Py_ssize_t len)
{
    PyObject *list = PyList_New(len);
    if (list == NULL) {
        return NULL;
    }
    for (Py_ssize_t i = 0; i < len; i++) {
        PyObject *value = PyLong_FromLong(data[i]);
        if (value == NULL) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, value);
    }
    return list;
}

/* ---------------------------------------------------------------------
 * Two-phase BFS: GIL-free plan, serial commit
 * ------------------------------------------------------------------ */

typedef struct {
    uint32_t *data;
    Py_ssize_t len;
    Py_ssize_t cap;
} PlanBuf;

static int
planbuf_reserve(PlanBuf *buf, Py_ssize_t extra)
{
    if (buf->len + extra <= buf->cap) {
        return 0;
    }
    Py_ssize_t cap = buf->cap ? buf->cap : 256;
    while (cap < buf->len + extra) {
        cap *= 2;
    }
    uint32_t *data = PyMem_RawRealloc(buf->data, (size_t)cap * sizeof(uint32_t));
    if (data == NULL) {
        return -1;
    }
    buf->data = data;
    buf->cap = cap;
    return 0;
}

/* Per-frontier-member plan verdicts. */
#define PLAN_RECORDED 0 /* adjacency already recorded: nothing planned */
#define PLAN_ROWS 1     /* successor rows planned in the job's PlanBuf */
#define PLAN_CALLBACK 2 /* table miss: commit takes the callback path */

typedef struct {
    KernelState *self;
    const int32_t *frontier;
    Py_ssize_t begin; /* this job's frontier block: [begin, end) */
    Py_ssize_t end;
    unsigned char *flags; /* shared, indexed by frontier position */
    PlanBuf plan;
    Py_ssize_t read; /* commit-phase cursor into plan.data */
    int oom;
} PlanJob;

/* Plan one contiguous frontier block from the tables alone: pure C
 * over state no other thread writes, so it runs with the GIL released
 * and blocks run in parallel. Per PLAN_ROWS cid the plan records
 * [n_edges, then per edge: eid followed by the full successor row];
 * any invoke/delta table miss discards the cid's partial record and
 * flags it PLAN_CALLBACK for the commit phase. */
static void
plan_block(PlanJob *job)
{
    KernelState *self = job->self;
    int n = self->n_processes;
    int n_fields = self->n_fields;
    for (Py_ssize_t f = job->begin; f < job->end; f++) {
        Py_ssize_t cid = job->frontier[f];
        if (self->adj_len[cid] >= 0) {
            job->flags[f] = PLAN_RECORDED;
            continue;
        }
        const uint32_t *src = self->rows + cid * n_fields;
        Py_ssize_t mark = job->plan.len;
        if (planbuf_reserve(&job->plan, 1) < 0) {
            job->oom = 1;
            return;
        }
        Py_ssize_t header = job->plan.len++;
        uint32_t n_edges = 0;
        int miss = 0;
        for (int pid = 0; pid < n; pid++) {
            if (src[n + pid] != 0) {
                continue; /* status != RUNNING: nothing enabled */
            }
            uint32_t local = src[pid];
            uint64_t ikey = ((uint64_t)pid << FIELD_BITS) | local;
            int32_t obj_index = u64map_get(&self->invoke, ikey);
            if (obj_index < 0) {
                miss = 1;
                break;
            }
            uint32_t obj_code = src[2 * n + obj_index];
            int32_t dsi =
                u64map_get(&self->deltas, (ikey << FIELD_BITS) | obj_code);
            if (dsi < 0) {
                miss = 1;
                break;
            }
            const DeltaSet *set = &self->delta_sets[dsi];
            if (planbuf_reserve(&job->plan,
                                (Py_ssize_t)set->n * (1 + n_fields)) < 0) {
                job->oom = 1;
                return;
            }
            for (int32_t i = 0; i < set->n; i++) {
                const uint32_t *vals = set->vals + (Py_ssize_t)i * 4;
                uint32_t *out = job->plan.data + job->plan.len;
                out[0] = vals[0]; /* eid */
                memcpy(out + 1, src, (size_t)n_fields * sizeof(uint32_t));
                out[1 + pid] = vals[1];
                out[1 + n + pid] = vals[2];
                out[1 + 2 * n + obj_index] = vals[3];
                job->plan.len += 1 + n_fields;
                n_edges++;
            }
        }
        if (miss) {
            job->plan.len = mark;
            job->flags[f] = PLAN_CALLBACK;
        } else {
            job->plan.data[header] = n_edges;
            job->flags[f] = PLAN_ROWS;
        }
    }
}

#ifdef REPRO_KERNEL_PTHREADS
static void *
plan_thread_main(void *arg)
{
    plan_block((PlanJob *)arg);
    return NULL;
}
#endif

typedef struct {
    IntBuf *order;
    IntBuf *parents;
    IntBuf *next_frontier;
    char *seen;
    Py_ssize_t seen_cap;
    Py_ssize_t seen_count;
    Py_ssize_t expansions;
    Py_ssize_t max_configurations;
} CommitCtx;

#define COMMIT_DONE 0
#define COMMIT_TRUNCATED 1
#define COMMIT_OOM (-1)
#define COMMIT_PYERR (-2)

/* Commit one planned frontier serially, in frontier order: intern the
 * planned rows (or run the GIL-holding callback expansion for cids
 * flagged PLAN_CALLBACK), record adjacency, then scan it with the
 * exact serial budget semantics — the budget is charged per newly
 * discovered successor, the truncating cid's adjacency is already
 * recorded, and the walk stops mid-scan. Because this loop replays
 * the serial discovery sequence regardless of how the plan phase was
 * partitioned, cids and edge order are identical across thread
 * counts. Touches no Python state unless a cid is flagged
 * PLAN_CALLBACK, so with no flagged cid the caller runs it with the
 * GIL released. */
static int
commit_frontier(KernelState *self, const int32_t *frontier, Py_ssize_t width,
                const unsigned char *flags, PlanJob *jobs, Py_ssize_t chunk,
                CommitCtx *ctx)
{
    int n_fields = self->n_fields;
    for (Py_ssize_t f = 0; f < width; f++) {
        Py_ssize_t cid = frontier[f];
        ctx->expansions++;
        if (flags[f] == PLAN_ROWS) {
            PlanJob *job = &jobs[f / chunk];
            uint32_t n_edges = job->plan.data[job->read++];
            int32_t *flat = NULL;
            if (n_edges) {
                flat = PyMem_RawMalloc((size_t)n_edges * 2 * sizeof(int32_t));
                if (flat == NULL) {
                    return COMMIT_OOM;
                }
            }
            for (uint32_t k = 0; k < n_edges; k++) {
                const uint32_t *rec = job->plan.data + job->read;
                Py_ssize_t tid = kernel_intern(self, rec + 1);
                if (tid < 0) {
                    PyMem_RawFree(flat);
                    return COMMIT_OOM;
                }
                flat[k * 2] = (int32_t)rec[0];
                flat[k * 2 + 1] = (int32_t)tid;
                job->read += 1 + n_fields;
            }
            self->adj[cid] = flat;
            self->adj_len[cid] = (int32_t)(n_edges * 2);
        } else if (flags[f] == PLAN_CALLBACK) {
            if (kernel_expand_new(self, cid) < 0) {
                return COMMIT_PYERR;
            }
        }
        if (ctx->seen_cap < self->row_count) {
            Py_ssize_t cap = self->row_count;
            char *grown = PyMem_RawRealloc(ctx->seen, (size_t)cap);
            if (grown == NULL) {
                return COMMIT_OOM;
            }
            memset(grown + ctx->seen_cap, 0, (size_t)(cap - ctx->seen_cap));
            ctx->seen = grown;
            ctx->seen_cap = cap;
        }
        const int32_t *adj = self->adj[cid];
        int32_t adj_len = self->adj_len[cid];
        for (int32_t k = 0; k < adj_len; k += 2) {
            int32_t tid = adj[k + 1];
            if (!ctx->seen[tid]) {
                if (ctx->seen_count >= ctx->max_configurations) {
                    return COMMIT_TRUNCATED;
                }
                ctx->seen[tid] = 1;
                ctx->seen_count++;
                if (intbuf_push(ctx->order, tid) < 0 ||
                    intbuf_push(ctx->parents, tid) < 0 ||
                    intbuf_push(ctx->parents, (int32_t)cid) < 0 ||
                    intbuf_push(ctx->parents, adj[k]) < 0 ||
                    intbuf_push(ctx->next_frontier, tid) < 0) {
                    return COMMIT_OOM;
                }
            }
        }
    }
    return COMMIT_DONE;
}

/* ---------------------------------------------------------------------
 * Python-visible methods
 * ------------------------------------------------------------------ */

static int
kernel_check_cid(const KernelState *self, Py_ssize_t cid)
{
    if (cid < 0 || cid >= self->row_count) {
        PyErr_Format(PyExc_IndexError, "unknown configuration id %zd", cid);
        return -1;
    }
    return 0;
}

static PyObject *
KernelState_intern_row(KernelState *self, PyObject *codes)
{
    if (kernel_parse_row(self, codes, self->scratch) < 0) {
        return NULL;
    }
    Py_ssize_t cid = kernel_intern(self, self->scratch);
    if (cid < 0) {
        return PyErr_NoMemory();
    }
    return PyLong_FromSsize_t(cid);
}

static PyObject *
KernelState_find_row(KernelState *self, PyObject *codes)
{
    if (kernel_parse_row(self, codes, self->scratch) < 0) {
        return NULL;
    }
    Py_ssize_t cid = kernel_find(self, self->scratch);
    if (cid < 0) {
        Py_RETURN_NONE;
    }
    return PyLong_FromSsize_t(cid);
}

static PyObject *
KernelState_row(KernelState *self, PyObject *arg)
{
    Py_ssize_t cid = PyLong_AsSsize_t(arg);
    if (cid == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (kernel_check_cid(self, cid) < 0) {
        return NULL;
    }
    const uint32_t *row = self->rows + cid * self->n_fields;
    PyObject *result = PyTuple_New(self->n_fields);
    if (result == NULL) {
        return NULL;
    }
    for (int i = 0; i < self->n_fields; i++) {
        PyObject *value = PyLong_FromUnsignedLong(row[i]);
        if (value == NULL) {
            Py_DECREF(result);
            return NULL;
        }
        PyTuple_SET_ITEM(result, i, value);
    }
    return result;
}

static PyObject *
KernelState_expand(KernelState *self, PyObject *arg)
{
    Py_ssize_t cid = PyLong_AsSsize_t(arg);
    if (cid == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (kernel_check_cid(self, cid) < 0) {
        return NULL;
    }
    if (self->adj_len[cid] < 0 && kernel_expand_new(self, cid) < 0) {
        return NULL;
    }
    return intbuf_as_list(self->adj[cid], self->adj_len[cid]);
}

static PyObject *
KernelState_adjacency(KernelState *self, PyObject *arg)
{
    Py_ssize_t cid = PyLong_AsSsize_t(arg);
    if (cid == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (kernel_check_cid(self, cid) < 0) {
        return NULL;
    }
    if (self->adj_len[cid] < 0) {
        Py_RETURN_NONE;
    }
    return intbuf_as_list(self->adj[cid], self->adj_len[cid]);
}

static PyObject *
KernelState_expand_pid(KernelState *self, PyObject *args)
{
    Py_ssize_t cid;
    int pid;
    if (!PyArg_ParseTuple(args, "ni", &cid, &pid)) {
        return NULL;
    }
    if (kernel_check_cid(self, cid) < 0) {
        return NULL;
    }
    if (pid < 0 || pid >= self->n_processes) {
        PyErr_Format(PyExc_IndexError, "unknown pid %d", pid);
        return NULL;
    }
    memcpy(self->src_row, self->rows + cid * self->n_fields,
           (size_t)self->n_fields * sizeof(uint32_t));
    IntBuf entries;
    if (intbuf_init(&entries, 8) < 0) {
        return PyErr_NoMemory();
    }
    if (kernel_expand_pid_into(self, pid, &entries) < 0) {
        intbuf_free(&entries);
        if (!PyErr_Occurred()) {
            PyErr_NoMemory();
        }
        return NULL;
    }
    PyObject *result = intbuf_as_list(entries.data, entries.len);
    intbuf_free(&entries);
    return result;
}

static PyObject *
KernelState_status_key(KernelState *self, PyObject *arg)
{
    Py_ssize_t cid = PyLong_AsSsize_t(arg);
    if (cid == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (kernel_check_cid(self, cid) < 0) {
        return NULL;
    }
    int n = self->n_processes;
    const uint32_t *row = self->rows + cid * self->n_fields;
    PyObject *result = PyTuple_New(n);
    if (result == NULL) {
        return NULL;
    }
    for (int pid = 0; pid < n; pid++) {
        PyObject *value = PyLong_FromUnsignedLong(row[n + pid]);
        if (value == NULL) {
            Py_DECREF(result);
            return NULL;
        }
        PyTuple_SET_ITEM(result, pid, value);
    }
    return result;
}

static PyObject *
KernelState_load_tables(KernelState *self, PyObject *args)
{
    PyObject *invoke_entries, *delta_entries;
    if (!PyArg_ParseTuple(args, "OO", &invoke_entries, &delta_entries)) {
        return NULL;
    }
    PyObject *fast =
        PySequence_Fast(invoke_entries, "invoke entries must be a sequence");
    if (fast == NULL) {
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);
    for (Py_ssize_t i = 0; i < n; i++) {
        int pid, obj_index;
        unsigned int local;
        if (!PyArg_ParseTuple(items[i], "iIi", &pid, &local, &obj_index)) {
            Py_DECREF(fast);
            return NULL;
        }
        if (pid < 0 || pid >= self->n_processes ||
            local >= (1U << FIELD_BITS) || obj_index < 0 ||
            2 * self->n_processes + obj_index >= self->n_fields) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError, "invoke entry out of range");
            return NULL;
        }
        uint64_t ikey = ((uint64_t)pid << FIELD_BITS) | local;
        if (u64map_set(&self->invoke, ikey, (int32_t)obj_index) < 0) {
            Py_DECREF(fast);
            return PyErr_NoMemory();
        }
    }
    Py_DECREF(fast);
    fast = PySequence_Fast(delta_entries, "delta entries must be a sequence");
    if (fast == NULL) {
        return NULL;
    }
    n = PySequence_Fast_GET_SIZE(fast);
    items = PySequence_Fast_ITEMS(fast);
    for (Py_ssize_t i = 0; i < n; i++) {
        int pid, obj_index;
        unsigned int local, obj_code;
        PyObject *outcomes;
        if (!PyArg_ParseTuple(items[i], "iIiIO", &pid, &local, &obj_index,
                              &obj_code, &outcomes)) {
            Py_DECREF(fast);
            return NULL;
        }
        if (pid < 0 || pid >= self->n_processes ||
            local >= (1U << FIELD_BITS) || obj_code >= (1U << FIELD_BITS)) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError, "delta entry out of range");
            return NULL;
        }
        uint64_t dkey =
            ((((uint64_t)pid << FIELD_BITS) | local) << FIELD_BITS) | obj_code;
        if (u64map_get(&self->deltas, dkey) >= 0) {
            continue; /* a first-miss memo already holds this key */
        }
        if (kernel_store_delta_set(self, dkey, outcomes) < 0) {
            Py_DECREF(fast);
            return NULL;
        }
    }
    Py_DECREF(fast);
    Py_RETURN_NONE;
}

static PyObject *
KernelState_run_bfs(KernelState *self, PyObject *args)
{
    Py_ssize_t start_id;
    Py_ssize_t max_configurations;
    PyObject *on_round = Py_None;
    int threads = 1;
    if (!PyArg_ParseTuple(args, "nn|Oi", &start_id, &max_configurations,
                          &on_round, &threads)) {
        return NULL;
    }
    if (kernel_check_cid(self, start_id) < 0) {
        return NULL;
    }
    if (threads < 1) {
        threads = 1;
    } else if (threads > MAX_PLAN_THREADS) {
        threads = MAX_PLAN_THREADS;
    }
#ifndef REPRO_KERNEL_PTHREADS
    threads = 1;
#endif

    IntBuf order, parents, frontier, next_frontier;
    PlanJob jobs[MAX_PLAN_THREADS];
    unsigned char *flags = NULL;
    Py_ssize_t flags_cap = 0;
    PyObject *result = NULL;
    CommitCtx ctx;
    int complete = 1;
    Py_ssize_t rounds = 0;
    Py_ssize_t depth = 0;

    memset(jobs, 0, sizeof(jobs));
    memset(&ctx, 0, sizeof(ctx));
    order.data = parents.data = frontier.data = next_frontier.data = NULL;
    order.len = order.cap = parents.len = parents.cap = 0;
    frontier.len = frontier.cap = next_frontier.len = next_frontier.cap = 0;
    if (intbuf_init(&order, 256) < 0 || intbuf_init(&parents, 256) < 0 ||
        intbuf_init(&frontier, 64) < 0 || intbuf_init(&next_frontier, 64) < 0) {
        PyErr_NoMemory();
        goto done;
    }
    ctx.order = &order;
    ctx.parents = &parents;
    ctx.next_frontier = &next_frontier;
    ctx.max_configurations = max_configurations;
    ctx.seen_cap = self->row_count;
    ctx.seen = PyMem_RawCalloc((size_t)(ctx.seen_cap ? ctx.seen_cap : 1), 1);
    if (ctx.seen == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    ctx.seen[start_id] = 1;
    ctx.seen_count = 1;
    if (intbuf_push(&order, (int32_t)start_id) < 0 ||
        intbuf_push(&frontier, (int32_t)start_id) < 0) {
        PyErr_NoMemory();
        goto done;
    }

    while (frontier.len) {
        Py_ssize_t width = frontier.len;
        if (on_round != Py_None) {
            PyObject *hook_result = PyObject_CallFunction(
                on_round, "nnn", depth, width, ctx.seen_count);
            if (hook_result == NULL) {
                goto done;
            }
            Py_DECREF(hook_result);
        }
        if (flags_cap < width) {
            unsigned char *grown = PyMem_RawRealloc(flags, (size_t)width);
            if (grown == NULL) {
                PyErr_NoMemory();
                goto done;
            }
            flags = grown;
            flags_cap = width;
        }
        Py_ssize_t n_jobs = threads < width ? threads : width;
        Py_ssize_t chunk = (width + n_jobs - 1) / n_jobs;
        n_jobs = (width + chunk - 1) / chunk;
        for (Py_ssize_t j = 0; j < n_jobs; j++) {
            jobs[j].self = self;
            jobs[j].frontier = frontier.data;
            jobs[j].begin = j * chunk;
            jobs[j].end = (j + 1) * chunk < width ? (j + 1) * chunk : width;
            jobs[j].flags = flags;
            jobs[j].plan.len = 0;
            jobs[j].read = 0;
            jobs[j].oom = 0;
        }
        int oom = 0;
        int have_callbacks = 0;
        int verdict = COMMIT_DONE;
        /* Plan the whole frontier with the GIL released — across OS
         * threads when asked — and, when no cid needs a callback,
         * commit inside the same GIL-free region. */
        Py_BEGIN_ALLOW_THREADS
#ifdef REPRO_KERNEL_PTHREADS
        if (n_jobs > 1) {
            pthread_t tids[MAX_PLAN_THREADS];
            int spawned[MAX_PLAN_THREADS];
            for (Py_ssize_t j = 1; j < n_jobs; j++) {
                spawned[j] = pthread_create(&tids[j], NULL, plan_thread_main,
                                            &jobs[j]) == 0;
            }
            plan_block(&jobs[0]);
            for (Py_ssize_t j = 1; j < n_jobs; j++) {
                if (spawned[j]) {
                    pthread_join(tids[j], NULL);
                } else {
                    plan_block(&jobs[j]); /* spawn failed: run inline */
                }
            }
        } else {
            plan_block(&jobs[0]);
        }
#else
        plan_block(&jobs[0]);
#endif
        for (Py_ssize_t j = 0; j < n_jobs; j++) {
            oom |= jobs[j].oom;
        }
        if (!oom) {
            for (Py_ssize_t f = 0; f < width; f++) {
                if (flags[f] == PLAN_CALLBACK) {
                    have_callbacks = 1;
                    break;
                }
            }
            if (!have_callbacks) {
                verdict = commit_frontier(self, frontier.data, width, flags,
                                          jobs, chunk, &ctx);
            }
        }
        Py_END_ALLOW_THREADS
        if (oom) {
            PyErr_NoMemory();
            goto done;
        }
        if (have_callbacks) {
            verdict = commit_frontier(self, frontier.data, width, flags, jobs,
                                      chunk, &ctx);
        }
        if (verdict == COMMIT_OOM) {
            PyErr_NoMemory();
            goto done;
        }
        if (verdict == COMMIT_PYERR) {
            goto done;
        }
        if (verdict == COMMIT_TRUNCATED) {
            /* Budget exhausted mid-scan: stop exactly here, matching
             * the Python backend (later frontier members stay
             * unexpanded; rounds counts only fully completed
             * frontiers). */
            complete = 0;
            goto build;
        }
        rounds++;
        depth++;
        IntBuf swap = frontier;
        frontier = next_frontier;
        next_frontier = swap;
        next_frontier.len = 0;
    }

build:;
    PyObject *order_list = intbuf_as_list(order.data, order.len);
    if (order_list == NULL) {
        goto done;
    }
    PyObject *parents_list = intbuf_as_list(parents.data, parents.len);
    if (parents_list == NULL) {
        Py_DECREF(order_list);
        goto done;
    }
    result = Py_BuildValue("(NNOnn)", order_list, parents_list,
                           complete ? Py_True : Py_False, ctx.expansions,
                           rounds);

done:
    PyMem_RawFree(ctx.seen);
    PyMem_RawFree(flags);
    for (int j = 0; j < MAX_PLAN_THREADS; j++) {
        PyMem_RawFree(jobs[j].plan.data);
    }
    intbuf_free(&order);
    intbuf_free(&parents);
    intbuf_free(&frontier);
    intbuf_free(&next_frontier);
    return result;
}

/* ---------------------------------------------------------------------
 * Type plumbing
 * ------------------------------------------------------------------ */

static int
KernelState_init(KernelState *self, PyObject *args, PyObject *kwargs)
{
    static char *keywords[] = {"n_fields", "n_processes", "resolve_invoke",
                               "compute_deltas", NULL};
    int n_fields, n_processes;
    PyObject *resolve_invoke, *compute_deltas;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "iiOO", keywords,
                                     &n_fields, &n_processes, &resolve_invoke,
                                     &compute_deltas)) {
        return -1;
    }
    if (n_fields <= 0 || n_processes <= 0 || 2 * n_processes > n_fields) {
        PyErr_SetString(PyExc_ValueError,
                        "need n_fields >= 2 * n_processes > 0");
        return -1;
    }
    self->n_fields = n_fields;
    self->n_processes = n_processes;
    Py_INCREF(resolve_invoke);
    Py_XSETREF(self->resolve_invoke, resolve_invoke);
    Py_INCREF(compute_deltas);
    Py_XSETREF(self->compute_deltas, compute_deltas);

    self->row_cap = 256;
    self->rows = PyMem_RawMalloc(
        (size_t)self->row_cap * (size_t)n_fields * sizeof(uint32_t));
    self->row_hashes =
        PyMem_RawMalloc((size_t)self->row_cap * sizeof(uint64_t));
    self->adj = PyMem_RawMalloc((size_t)self->row_cap * sizeof(int32_t *));
    self->adj_len = PyMem_RawMalloc((size_t)self->row_cap * sizeof(int32_t));
    self->src_row = PyMem_RawMalloc((size_t)n_fields * sizeof(uint32_t));
    self->scratch = PyMem_RawMalloc((size_t)n_fields * sizeof(uint32_t));
    if (self->rows == NULL || self->row_hashes == NULL || self->adj == NULL ||
        self->adj_len == NULL || self->src_row == NULL ||
        self->scratch == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < self->row_cap; i++) {
        self->adj[i] = NULL;
        self->adj_len[i] = -1;
    }
    self->row_count = 0;
    self->table_size = 1024;
    self->table = PyMem_RawMalloc((size_t)self->table_size * sizeof(int32_t));
    if (self->table == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < self->table_size; i++) {
        self->table[i] = -1;
    }
    if (u64map_init(&self->invoke, 256) < 0 ||
        u64map_init(&self->deltas, 1024) < 0) {
        PyErr_NoMemory();
        return -1;
    }
    self->delta_sets = NULL;
    self->ds_count = self->ds_cap = 0;
    return 0;
}

static int
KernelState_traverse(KernelState *self, visitproc visit, void *arg)
{
    Py_VISIT(self->resolve_invoke);
    Py_VISIT(self->compute_deltas);
    return 0;
}

static int
KernelState_clear(KernelState *self)
{
    Py_CLEAR(self->resolve_invoke);
    Py_CLEAR(self->compute_deltas);
    return 0;
}

static void
KernelState_dealloc(KernelState *self)
{
    PyObject_GC_UnTrack(self);
    KernelState_clear(self);
    PyMem_RawFree(self->rows);
    PyMem_RawFree(self->row_hashes);
    PyMem_RawFree(self->table);
    if (self->adj != NULL) {
        for (Py_ssize_t i = 0; i < self->row_cap; i++) {
            PyMem_RawFree(self->adj[i]);
        }
    }
    PyMem_RawFree(self->adj);
    PyMem_RawFree(self->adj_len);
    u64map_free(&self->invoke);
    u64map_free(&self->deltas);
    for (Py_ssize_t i = 0; i < self->ds_count; i++) {
        PyMem_RawFree(self->delta_sets[i].vals);
    }
    PyMem_RawFree(self->delta_sets);
    PyMem_RawFree(self->src_row);
    PyMem_RawFree(self->scratch);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static Py_ssize_t
KernelState_length(KernelState *self)
{
    return self->row_count;
}

static PyMethodDef KernelState_methods[] = {
    {"intern_row", (PyCFunction)KernelState_intern_row, METH_O,
     "The cid of a code row, interning it if new."},
    {"find_row", (PyCFunction)KernelState_find_row, METH_O,
     "The cid of a code row, or None - never interns."},
    {"row", (PyCFunction)KernelState_row, METH_O,
     "The code row of an interned cid."},
    {"expand", (PyCFunction)KernelState_expand, METH_O,
     "Flat [eid, tid, ...] adjacency of cid (computed once)."},
    {"adjacency", (PyCFunction)KernelState_adjacency, METH_O,
     "The recorded adjacency of cid, or None - never expands."},
    {"expand_pid", (PyCFunction)KernelState_expand_pid, METH_VARARGS,
     "Flat [eid, tid, ...] for one pid; does not record adjacency."},
    {"status_key", (PyCFunction)KernelState_status_key, METH_O,
     "The process status codes of cid as a tuple."},
    {"load_tables", (PyCFunction)KernelState_load_tables, METH_VARARGS,
     "Bulk-ingest compiled protocol tables (invoke and delta entries)."},
    {"run_bfs", (PyCFunction)KernelState_run_bfs, METH_VARARGS,
     "Batch BFS: (order, parents, complete, expansions, rounds)."},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods KernelState_as_sequence = {
    .sq_length = (lenfunc)KernelState_length,
};

static PyTypeObject KernelStateType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.analysis.kernel._ckernel.KernelState",
    .tp_basicsize = sizeof(KernelState),
    .tp_itemsize = 0,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled packed-state exploration kernel.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)KernelState_init,
    .tp_dealloc = (destructor)KernelState_dealloc,
    .tp_traverse = (traverseproc)KernelState_traverse,
    .tp_clear = (inquiry)KernelState_clear,
    .tp_methods = KernelState_methods,
    .tp_as_sequence = &KernelState_as_sequence,
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.analysis.kernel._ckernel",
    .m_doc = "Accelerated packed-state exploration kernel.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if (PyType_Ready(&KernelStateType) < 0) {
        return NULL;
    }
    PyObject *module = PyModule_Create(&ckernel_module);
    if (module == NULL) {
        return NULL;
    }
#ifdef REPRO_KERNEL_PTHREADS
    int has_threads = 1;
#else
    int has_threads = 0;
#endif
    if (PyModule_AddIntConstant(module, "FIELD_BITS", FIELD_BITS) < 0 ||
        PyModule_AddIntConstant(module, "HAS_THREADS", has_threads) < 0 ||
        PyModule_AddIntConstant(module, "MAX_THREADS", MAX_PLAN_THREADS) < 0 ||
        PyModule_AddStringConstant(module, "NAME", "compiled") < 0) {
        Py_DECREF(module);
        return NULL;
    }
    Py_INCREF(&KernelStateType);
    if (PyModule_AddObject(module, "KernelState",
                           (PyObject *)&KernelStateType) < 0) {
        Py_DECREF(&KernelStateType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
