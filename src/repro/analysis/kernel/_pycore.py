"""Pure-Python flat kernel: big-int words, dict-free hot loop.

Each interned configuration is one arbitrary-precision integer — the
packed row of :mod:`~repro.analysis.kernel.encoding` folded as
``sum(code << FIELD_BITS*slot)``. The BFS hot loop then touches only:

* one list (``_words``, cid -> word),
* one dict (``_ids``, word -> cid) hit once per *generated* successor,
* per-``(pid, local, object-state)`` **delta tables**: a transition is
  applied as a single integer add (the precomputed signed adjustment of
  the three affected fields), not dataclass construction.

Protocol semantics stay in Python land: when a ``(pid, local)`` or
``(pid, local, obj)`` key misses its table the kernel calls back into
the explorer (``resolve_invoke`` / ``compute_deltas``) exactly once,
then replays the memoized result forever after. The compiled backend
mirrors this contract byte-for-byte — same ids, same edge order.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .encoding import FIELD_BITS

#: Backend name reported through ``Explorer.kernel``/benches.
NAME = "python"

_MASK = (1 << FIELD_BITS) - 1


class PyKernel:
    """Flat exploration core over packed big-int configuration words.

    ``resolve_invoke(pid, local_code) -> obj_index`` names the object a
    running process is poised at; ``compute_deltas(pid, local_code,
    obj_index, obj_code) -> ((edge_id, new_local, new_status,
    new_obj), ...)`` enumerates its outcomes. Both are called only on
    table misses, in deterministic (pid-ascending, outcome-order)
    sequence, so edge-id allocation is identical across backends.
    """

    __slots__ = (
        "n_fields",
        "n_processes",
        "_resolve_invoke",
        "_compute_deltas",
        "_ids",
        "_words",
        "_adjacency",
        "_invoke",
        "_deltas",
    )

    def __init__(
        self,
        n_fields: int,
        n_processes: int,
        resolve_invoke: Callable[[int, int], int],
        compute_deltas: Callable[
            [int, int, int, int], Tuple[Tuple[int, int, int, int], ...]
        ],
    ) -> None:
        self.n_fields = n_fields
        self.n_processes = n_processes
        self._resolve_invoke = resolve_invoke
        self._compute_deltas = compute_deltas
        self._ids: dict = {}
        self._words: List[int] = []
        #: cid -> flat [eid, tid, eid, tid, ...] or None if unexpanded.
        self._adjacency: List[Optional[List[int]]] = []
        #: (pid << FIELD_BITS | local) -> object index.
        self._invoke: dict = {}
        #: ((pid << F | local) << F | obj_code) -> ((eid, adjustment), ...).
        self._deltas: dict = {}

    # -- compiled protocol tables ---------------------------------------------

    def load_tables(self, invoke_entries, delta_entries) -> None:
        """Bulk-ingest compiled protocol tables (see ``kernel.tables``).

        Entries land in the same memo maps the first-miss callbacks
        populate, so loaded keys never call back into Python; keys the
        compiler did not cover stay absent — the fallback sentinel —
        and take the callback path unchanged.
        """
        invoke = self._invoke
        for pid, local, obj_index in invoke_entries:
            invoke[(pid << FIELD_BITS) | local] = obj_index
        n = self.n_processes
        deltas = self._deltas
        for pid, local, obj_index, obj_code, outcomes in delta_entries:
            ikey = (pid << FIELD_BITS) | local
            lshift = pid * FIELD_BITS
            sshift = (n + pid) * FIELD_BITS
            oshift = (2 * n + obj_index) * FIELD_BITS
            deltas[(ikey << FIELD_BITS) | obj_code] = tuple(
                (
                    eid,
                    ((new_local - local) << lshift)
                    + (new_status << sshift)
                    + ((new_obj - obj_code) << oshift),
                )
                for eid, new_local, new_status, new_obj in outcomes
            )

    # -- interning ------------------------------------------------------------

    def intern_row(self, codes: Sequence[int]) -> int:
        """The cid of a code row, interning it if new."""
        word = 0
        for slot, code in enumerate(codes):
            word |= code << (slot * FIELD_BITS)
        cid = self._ids.get(word)
        if cid is None:
            cid = len(self._words)
            self._ids[word] = cid
            self._words.append(word)
            self._adjacency.append(None)
        return cid

    def find_row(self, codes: Sequence[int]) -> Optional[int]:
        """The cid of a code row, or None — never interns."""
        word = 0
        for slot, code in enumerate(codes):
            word |= code << (slot * FIELD_BITS)
        return self._ids.get(word)

    def row(self, cid: int) -> Tuple[int, ...]:
        """The code row of an interned cid."""
        word = self._words[cid]
        return tuple(
            (word >> (slot * FIELD_BITS)) & _MASK
            for slot in range(self.n_fields)
        )

    def __len__(self) -> int:
        return len(self._words)

    # -- expansion ------------------------------------------------------------

    def _expand_new(self, cid: int) -> List[int]:
        """Compute, intern, and record the full adjacency of ``cid``."""
        word = self._words[cid]
        n = self.n_processes
        words = self._words
        ids = self._ids
        adjacency = self._adjacency
        invoke = self._invoke
        delta_tables = self._deltas
        entries: List[int] = []
        for pid in range(n):
            if (word >> ((n + pid) * FIELD_BITS)) & _MASK:
                continue  # status != RUNNING(0): nothing enabled
            local = (word >> (pid * FIELD_BITS)) & _MASK
            ikey = (pid << FIELD_BITS) | local
            obj_index = invoke.get(ikey)
            if obj_index is None:
                obj_index = self._resolve_invoke(pid, local)
                invoke[ikey] = obj_index
            obj_code = (word >> ((2 * n + obj_index) * FIELD_BITS)) & _MASK
            dkey = (ikey << FIELD_BITS) | obj_code
            deltas = delta_tables.get(dkey)
            if deltas is None:
                deltas = self._make_deltas(pid, local, obj_index, obj_code)
                delta_tables[dkey] = deltas
            for eid, adjustment in deltas:
                tword = word + adjustment
                tid = ids.get(tword)
                if tid is None:
                    tid = len(words)
                    ids[tword] = tid
                    words.append(tword)
                    adjacency.append(None)
                entries.append(eid)
                entries.append(tid)
        adjacency[cid] = entries
        return entries

    def _make_deltas(
        self, pid: int, local: int, obj_index: int, obj_code: int
    ) -> Tuple[Tuple[int, int, int], ...]:
        """Precompute (eid, signed word adjustment) for one miss.

        The expanding pid's status is always code 0 (RUNNING), so the
        adjustment covers all three touched fields exactly:
        local += nl-local, status += ns-0, object += no-obj_code.
        """
        n = self.n_processes
        lshift = pid * FIELD_BITS
        sshift = (n + pid) * FIELD_BITS
        oshift = (2 * n + obj_index) * FIELD_BITS
        return tuple(
            (
                eid,
                ((nl - local) << lshift)
                + (ns << sshift)
                + ((no - obj_code) << oshift),
            )
            for eid, nl, ns, no in self._compute_deltas(
                pid, local, obj_index, obj_code
            )
        )

    def expand(self, cid: int) -> List[int]:
        """Flat [eid, tid, ...] adjacency of ``cid`` (computed once)."""
        adj = self._adjacency[cid]
        if adj is None:
            adj = self._expand_new(cid)
        return adj

    def adjacency(self, cid: int) -> Optional[List[int]]:
        """The recorded adjacency of ``cid``, or None — never expands."""
        return self._adjacency[cid]

    def expand_pid(self, cid: int, pid: int) -> List[int]:
        """Flat [eid, tid, ...] for one pid; does NOT record adjacency.

        Backs ``Explorer.step``'s targeted expansion, which must not
        populate the full-expansion cache (pinned by the targeted-step
        tests).
        """
        word = self._words[cid]
        n = self.n_processes
        entries: List[int] = []
        if (word >> ((n + pid) * FIELD_BITS)) & _MASK:
            return entries
        local = (word >> (pid * FIELD_BITS)) & _MASK
        ikey = (pid << FIELD_BITS) | local
        obj_index = self._invoke.get(ikey)
        if obj_index is None:
            obj_index = self._resolve_invoke(pid, local)
            self._invoke[ikey] = obj_index
        obj_code = (word >> ((2 * n + obj_index) * FIELD_BITS)) & _MASK
        dkey = (ikey << FIELD_BITS) | obj_code
        deltas = self._deltas.get(dkey)
        if deltas is None:
            deltas = self._make_deltas(pid, local, obj_index, obj_code)
            self._deltas[dkey] = deltas
        ids = self._ids
        words = self._words
        adjacency = self._adjacency
        for eid, adjustment in deltas:
            tword = word + adjustment
            tid = ids.get(tword)
            if tid is None:
                tid = len(words)
                ids[tword] = tid
                words.append(tword)
                adjacency.append(None)
            entries.append(eid)
            entries.append(tid)
        return entries

    # -- batch traversal --------------------------------------------------------

    def run_bfs(
        self,
        start_id: int,
        max_configurations: int,
        on_round: Optional[Callable[[int, int, int], None]] = None,
        threads: int = 1,
    ) -> Tuple[List[int], List[int], bool, int, int]:
        """Breadth-first expansion of the whole reachable graph.

        Returns ``(order, parents, complete, expansions, rounds)``:
        ``order`` is every distinct configuration in discovery order
        (``start_id`` first); ``parents`` is a flat ``[tid, src, eid,
        ...]`` triple list over the non-root entries of ``order``;
        ``complete`` is False when the ``max_configurations`` budget
        truncated the walk. ``on_round(depth, width, seen)`` fires once
        per frontier before it is scanned (tracing hook).

        ``threads`` is accepted for backend-signature parity and
        ignored: the GIL serializes this backend anyway, and results
        are byte-identical across thread counts by contract, so the
        serial walk *is* the threaded walk's observable behavior.

        Truncation replicates the object-level loop exactly: the budget
        is charged per *newly discovered* successor, the truncating
        configuration's adjacency is already recorded, and the walk
        stops mid-scan (later frontier members stay unexpanded).
        """
        del threads  # byte-identical by contract; nothing to vary
        words = self._words
        adjacency = self._adjacency
        seen = bytearray(len(words))
        seen[start_id] = 1
        seen_count = 1
        order = [start_id]
        parents: List[int] = []
        frontier = [start_id]
        expansions = 0
        rounds = 0
        depth = 0
        while frontier:
            if on_round is not None:
                on_round(depth, len(frontier), seen_count)
            next_frontier: List[int] = []
            for cid in frontier:
                expansions += 1
                adj = adjacency[cid]
                if adj is None:
                    adj = self._expand_new(cid)
                    if len(seen) < len(words):
                        seen.extend(bytes(len(words) - len(seen)))
                # Iterate a C-built slice of the target ids: on warm
                # replay this loop is the whole walk, and slicing beats
                # stride-2 indexing by a wide margin.
                for index, tid in enumerate(adj[1::2]):
                    if not seen[tid]:
                        if seen_count >= max_configurations:
                            return order, parents, False, expansions, rounds
                        seen[tid] = 1
                        seen_count += 1
                        order.append(tid)
                        parents.append(tid)
                        parents.append(cid)
                        parents.append(adj[index * 2])
                        next_frontier.append(tid)
            rounds += 1
            depth += 1
            frontier = next_frontier
        return order, parents, True, expansions, rounds

    # -- status access ----------------------------------------------------------

    def status_key(self, cid: int) -> Tuple[int, ...]:
        """The P status codes of ``cid`` — the safety-relevant segment.

        Configurations sharing a status key share decisions, aborts,
        and enabled sets, so verdict memoization keys on this tuple.
        """
        word = self._words[cid]
        n = self.n_processes
        return tuple(
            (word >> ((n + pid) * FIELD_BITS)) & _MASK for pid in range(n)
        )
