"""Protocol table compiler: callback semantics flattened ahead of time.

The kernel backends memoize protocol semantics on first miss — every
distinct ``(pid, local)`` and ``(pid, local, object-state)`` key costs
one trip through the Python callbacks (``resolve_invoke`` /
``compute_deltas``) before its flat-table entry exists. On cold
exploration those first misses dominate the wall clock (~18µs each
against sub-µs table replay), which is the Amdahl cap PR 7 measured.

:func:`compile_tables` removes the misses from the exploration path: it
enumerates the protocol's transition structure *ahead of exploration*
over the encoder's code space — every process automaton local state
that can be running, crossed with every state its invoked object can
reach — into one :class:`ProtocolTables` value. A fresh
:class:`~repro.analysis.explorer.Explorer` then *loads* the tables:

* the encoder replays the compiler's slot-code allocations (codes are
  first-seen, so replaying the same sequence reproduces the same
  codes),
* the edge-id table replays the compiler's ``(pid, choice, response)``
  allocations,
* the backend bulk-ingests the invoke and delta entries
  (``load_tables``), after which frontier expansion needs no Python at
  all — the compiled backend releases the GIL across whole frontiers.

**Fallback sentinel.** Tables may be *incomplete* (the closure is
budgeted, and it over-approximates reachability, so it can also be cut
off early). Missing keys are simply absent from the backend maps — the
open-addressing probe answers "empty", which is the not-yet-compiled
sentinel — and the backend falls back to the existing first-miss
callbacks for exactly those keys. Correctness never depends on table
coverage.

**Determinism contract.** The closure walks worklists in list order
with per-pair cursors — no set iteration, no hash-order dependence —
so a given protocol instance always compiles to byte-identical tables.
Table-loaded explorers allocate slot codes and edge ids in *closure*
order rather than BFS-miss order, so raw rows and raw edge ids differ
from callback mode; every exposed observable (configuration ids,
orders, parents as :class:`Edge` values, round events, verdicts,
digests, reports, cache keys) is identical because ids are allocated
in discovery order over a bijective row↔configuration map and edge
ids are resolved to semantic ``Edge`` objects before anything leaves
the explorer. The property suite pins this observable-by-observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Mapping, Sequence, Tuple

from ...errors import AnalysisError

#: Default closure budget: entries are ~20µs each to compile, so this
#: caps a pathological product space at a few seconds before the
#: compiler gives up and leaves the rest to the callback fallback.
DEFAULT_ENTRY_BUDGET = 200_000

#: One compiled outcome row: (edge id, new local, new status, new obj).
Outcome = Tuple[int, int, int, int]

#: One delta entry: (pid, local code, object index, object code,
#: sorted outcome rows) — the flat form both backends ingest.
DeltaEntry = Tuple[int, int, int, int, Tuple[Outcome, ...]]


@dataclass(frozen=True)
class ProtocolTables:
    """The compiled transition structure of one protocol instance.

    Self-contained: carries the encoder allocation sequences (so a
    fresh explorer can reproduce the compiler's code space), the edge
    allocation sequence, and the flat invoke/delta entries keyed by
    those codes. Values are the interned protocol objects themselves —
    tables travel to pool workers by pickle like configurations do.
    """

    n_processes: int
    n_objects: int
    #: Per-pid local-state values in slot-code allocation order.
    local_values: Tuple[Tuple[Hashable, ...], ...]
    #: Status values in allocation order (seed statuses first).
    status_values: Tuple[Tuple, ...]
    #: Per-object state values in slot-code allocation order.
    object_values: Tuple[Tuple[Hashable, ...], ...]
    #: (pid, choice, response) in edge-id allocation order.
    edges: Tuple[Tuple[int, int, Hashable], ...]
    #: (pid, local code, invoked object index) per running local.
    invoke_entries: Tuple[Tuple[int, int, int], ...]
    #: The compiled delta map — see :data:`DeltaEntry`.
    delta_entries: Tuple[DeltaEntry, ...]
    #: False when the entry budget (or a per-entry error on an
    #: over-approximated state) cut the closure short; missing keys
    #: fall back to the runtime callbacks.
    complete: bool

    @property
    def entries(self) -> int:
        """The number of compiled delta entries."""
        return len(self.delta_entries)


def compile_tables(
    objects: Mapping[str, object],
    processes: Sequence[object],
    *,
    entry_budget: int = DEFAULT_ENTRY_BUDGET,
) -> ProtocolTables:
    """Compile one protocol instance's tables over its code space.

    The closure seeds the initial configuration, then drives the same
    callbacks exploration would (``_resolve_invoke_codes`` /
    ``_compute_delta_codes``) over a worklist of ``(pid, running
    local code, invoked object)`` pairs, each holding a cursor into
    its object's growing code list. New running locals and new object
    codes extend the worklist until no cursor can advance — a
    deterministic fixpoint independent of ``PYTHONHASHSEED``.
    """
    # Deferred: explorer imports this package's __init__.
    from ..explorer import Explorer

    explorer = Explorer(objects, processes, kernel="python", tables=False)
    encoder = explorer._encoder
    initial = explorer.initial_configuration()
    row = encoder.encode(
        initial.process_states, initial.statuses, initial.object_states
    )
    n = len(explorer.processes)

    invoke_entries: List[Tuple[int, int, int]] = []
    delta_entries: List[DeltaEntry] = []
    #: (pid, local_code, obj_index) worklist, discovery order.
    pairs: List[Tuple[int, int, int]] = []
    #: pairs[i]'s next unprocessed code in its object's slot.
    cursors: List[int] = []
    seen_locals = set()
    complete = True

    def add_pair(pid: int, local_code: int) -> None:
        if (pid, local_code) in seen_locals:
            return
        seen_locals.add((pid, local_code))
        obj_index = explorer._resolve_invoke_codes(pid, local_code)
        invoke_entries.append((pid, local_code, obj_index))
        pairs.append((pid, local_code, obj_index))
        cursors.append(0)

    for pid in range(n):
        if row[n + pid] == 0:  # status code 0 = RUNNING = enabled
            add_pair(pid, row[pid])

    object_values = encoder._object_values
    budget_exhausted = False
    progress = True
    while progress and not budget_exhausted:
        progress = False
        index = 0
        while index < len(pairs):  # pairs grow during the sweep
            pid, local_code, obj_index = pairs[index]
            codes = object_values[obj_index]
            while cursors[index] < len(codes):
                obj_code = cursors[index]
                cursors[index] += 1
                progress = True
                if len(delta_entries) >= entry_budget:
                    complete = False
                    budget_exhausted = True
                    break
                try:
                    outcomes = explorer._compute_delta_codes(
                        pid, local_code, obj_index, obj_code
                    )
                except AnalysisError:
                    # The product closure over-approximates
                    # reachability; a state pairing that only exists
                    # off the reachable graph may not have defined
                    # semantics. Leave the key to the runtime
                    # callback, which raises the real error iff the
                    # pairing is actually reachable.
                    complete = False
                    continue
                delta_entries.append(
                    (pid, local_code, obj_index, obj_code, outcomes)
                )
                for _eid, new_local, new_status, _new_obj in outcomes:
                    if new_status == 0:
                        add_pair(pid, new_local)
            if budget_exhausted:
                break
            index += 1

    return ProtocolTables(
        n_processes=n,
        n_objects=len(explorer.specs),
        local_values=tuple(
            tuple(values) for values in encoder._local_values
        ),
        status_values=tuple(encoder._status_values),
        object_values=tuple(tuple(values) for values in object_values),
        edges=tuple(explorer._edge_ids),
        invoke_entries=tuple(invoke_entries),
        delta_entries=tuple(delta_entries),
        complete=complete,
    )
