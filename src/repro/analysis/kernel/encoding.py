"""Structural integer encoding of configurations (the packed word).

The PR-2 :class:`~repro.analysis.intern.InternTable` interns whole
:class:`~repro.analysis.explorer.Configuration` objects — one deep
tuple hash per lookup. The kernel goes one level deeper and interns the
*slots*: every process local state, process status, and object state is
mapped to a small per-slot integer code, so a configuration becomes a
fixed-width row of ``2·P + M`` codes (``P`` processes, ``M`` objects)::

    slot        0 .. P-1        P .. 2P-1         2P .. 2P+M-1
    contents    local state     process status    object state
                of pid i        of pid i          of object j

Each code is allocated first-seen (discovery order — deterministic and
independent of ``PYTHONHASHSEED``, the R001 contract) and fits in
:data:`FIELD_BITS` bits, so a whole row packs into one machine-friendly
word: the pure-Python backend folds it into a single big int
(``code << FIELD_BITS·slot``), the compiled backend keeps it as a
``uint32`` row. Applying a transition is then integer arithmetic on
three fields instead of tuple surgery plus a deep hash.

Status code 0 is reserved for ``RUNNING`` (the seed statuses are
pre-interned at construction), which makes "is this process enabled" a
zero-test on the packed status field.

Decoding returns the *original* interned objects — the first-seen local
state / status / object state — so configurations materialized from a
row are value- and repr-identical to the ones the old object-level
explorer built (seed-digest equivalence is bit-for-bit).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from ...errors import AnalysisError

#: Width of one packed field. 24 bits = 16.7M distinct values per slot,
#: far beyond any graph the bounded explorer can hold in memory, while
#: keeping a whole status segment comfortably inside one machine word
#: for small ``P``.
FIELD_BITS = 24

#: Exclusive upper bound for any slot code.
MAX_CODE = 1 << FIELD_BITS


class PackedEncoder:
    """Bidirectional (state object) <-> (slot code) tables for one
    protocol instance.

    One encoder belongs to one explorer: the code spaces are built
    around a fixed process/object count, and codes are allocated in
    first-seen order per slot. ``encode`` allocates; the ``peek``
    variants never allocate (they answer None for unseen values), which
    is what keeps :meth:`InternTable.get_id`-style queries
    side-effect-free.
    """

    __slots__ = (
        "n_processes",
        "n_objects",
        "n_fields",
        "_local_ids",
        "_local_values",
        "_status_ids",
        "_status_values",
        "_object_ids",
        "_object_values",
    )

    def __init__(
        self,
        n_processes: int,
        n_objects: int,
        seed_statuses: Sequence[Tuple] = (),
    ) -> None:
        self.n_processes = n_processes
        self.n_objects = n_objects
        self.n_fields = 2 * n_processes + n_objects
        self._local_ids: List[dict] = [{} for _ in range(n_processes)]
        self._local_values: List[List[Hashable]] = [
            [] for _ in range(n_processes)
        ]
        self._status_ids: dict = {}
        self._status_values: List[Tuple] = []
        for status in seed_statuses:
            self._status_ids[status] = len(self._status_values)
            self._status_values.append(status)
        self._object_ids: List[dict] = [{} for _ in range(n_objects)]
        self._object_values: List[List[Hashable]] = [
            [] for _ in range(n_objects)
        ]

    # -- per-slot allocation ------------------------------------------------

    def local_code(self, pid: int, state: Hashable) -> int:
        """The code of ``state`` in pid's local slot (allocating)."""
        ids = self._local_ids[pid]
        code = ids.get(state)
        if code is None:
            values = self._local_values[pid]
            code = len(values)
            if code >= MAX_CODE:
                raise AnalysisError(
                    f"packed encoding overflow: process {pid} has more than "
                    f"{MAX_CODE} distinct local states"
                )
            ids[state] = code
            values.append(state)
        return code

    def status_code(self, status: Tuple) -> int:
        """The code of ``status`` in the shared status slot (allocating)."""
        ids = self._status_ids
        code = ids.get(status)
        if code is None:
            values = self._status_values
            code = len(values)
            if code >= MAX_CODE:
                raise AnalysisError(
                    f"packed encoding overflow: more than {MAX_CODE} "
                    f"distinct process statuses"
                )
            ids[status] = code
            values.append(status)
        return code

    def object_code(self, obj_index: int, state: Hashable) -> int:
        """The code of ``state`` in an object's slot (allocating)."""
        ids = self._object_ids[obj_index]
        code = ids.get(state)
        if code is None:
            values = self._object_values[obj_index]
            code = len(values)
            if code >= MAX_CODE:
                raise AnalysisError(
                    f"packed encoding overflow: object {obj_index} has more "
                    f"than {MAX_CODE} distinct states"
                )
            ids[state] = code
            values.append(state)
        return code

    # -- decoding -------------------------------------------------------------

    def local_value(self, pid: int, code: int) -> Hashable:
        """The first-seen local state carrying ``code`` in pid's slot."""
        return self._local_values[pid][code]

    def status_value(self, code: int) -> Tuple:
        """The first-seen status tuple carrying ``code``."""
        return self._status_values[code]

    def object_value(self, obj_index: int, code: int) -> Hashable:
        """The first-seen object state carrying ``code``."""
        return self._object_values[obj_index][code]

    # -- whole-row encoding ---------------------------------------------------

    def encode(
        self,
        process_states: Sequence[Hashable],
        statuses: Sequence[Tuple],
        object_states: Sequence[Hashable],
    ) -> List[int]:
        """The code row of a configuration's field triple (allocating)."""
        row = [self.local_code(pid, s) for pid, s in enumerate(process_states)]
        row.extend(self.status_code(status) for status in statuses)
        row.extend(
            self.object_code(oi, s) for oi, s in enumerate(object_states)
        )
        return row

    def peek(
        self,
        process_states: Sequence[Hashable],
        statuses: Sequence[Tuple],
        object_states: Sequence[Hashable],
    ) -> Optional[List[int]]:
        """The code row if every slot value was seen before, else None.

        Never allocates — the side-effect-free form backing
        ``get_id``-style queries.
        """
        row: List[int] = []
        for pid, state in enumerate(process_states):
            code = self._local_ids[pid].get(state)
            if code is None:
                return None
            row.append(code)
        for status in statuses:
            code = self._status_ids.get(status)
            if code is None:
                return None
            row.append(code)
        for oi, state in enumerate(object_states):
            code = self._object_ids[oi].get(state)
            if code is None:
                return None
            row.append(code)
        return row

    def decode(
        self, row: Sequence[int]
    ) -> Tuple[Tuple[Hashable, ...], Tuple[Tuple, ...], Tuple[Hashable, ...]]:
        """The (process_states, statuses, object_states) triple of a row,
        built from the first-seen interned objects."""
        n = self.n_processes
        states = tuple(
            self._local_values[pid][row[pid]] for pid in range(n)
        )
        statuses = tuple(
            self._status_values[row[n + pid]] for pid in range(n)
        )
        objects = tuple(
            self._object_values[oi][row[2 * n + oi]]
            for oi in range(self.n_objects)
        )
        return states, statuses, objects

    # -- introspection (property tests, docs) ---------------------------------

    def slot_sizes(self) -> Tuple[Tuple[int, ...], int, Tuple[int, ...]]:
        """(per-pid local count, status count, per-object state count)."""
        return (
            tuple(len(values) for values in self._local_values),
            len(self._status_values),
            tuple(len(values) for values in self._object_values),
        )
