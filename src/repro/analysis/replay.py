"""Strict replay of explorer witnesses through the live simulator.

A counterexample is only evidence if it can be replayed bit-for-bit: the
explorer's :class:`~repro.analysis.explorer.Edge` sequence names which
process moved and which nondeterministic outcome the adversary chose,
and running the *live* :class:`~repro.runtime.system.System` under a
:class:`~repro.runtime.scheduler.ScriptedScheduler` plus a
:class:`~repro.objects.base.ScriptedOracle` must land in exactly the
configuration the explorer predicted. This module packages that round
trip:

* :func:`oracle_script` — project an edge schedule onto the choices the
  oracle will actually be consulted for (the simulator only asks the
  oracle on multi-outcome steps, while explorer edges carry a choice for
  every step);
* :func:`replay_counterexample` — run the scripted replay and return the
  resulting :class:`~repro.runtime.history.RunHistory`;
* :func:`verify_replay` — replay and diff against the witness, step by
  step, producing a :class:`ReplayReport`.

Both scripted adversaries run in strict mode by default: if the replay
ever needs a choice the script cannot answer, the run raises
(:class:`~repro.errors.SchedulingError` /
:class:`~repro.errors.ReplayDivergenceError`) instead of silently
degrading into a different run — lint rule R006's contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..objects.base import ScriptedOracle
from ..runtime.history import RunHistory
from ..runtime.scheduler import ScriptedScheduler
from ..runtime.system import System
from ..types import ProcessId, Value
from .explorer import Edge, Explorer, SafetyCounterexample

#: Anything that names a schedule: a counterexample or a bare edge list.
Witness = Union[SafetyCounterexample, Sequence[Edge]]


def _edges(witness: Witness) -> Tuple[Edge, ...]:
    if isinstance(witness, SafetyCounterexample):
        return tuple(witness.schedule)
    return tuple(witness)


def oracle_script(explorer: Explorer, schedule: Sequence[Edge]) -> List[int]:
    """The oracle-consultation subsequence of ``schedule``'s choices.

    The simulator consults the response oracle only when an operation
    has more than one outcome, while explorer edges record a choice
    (usually 0) for every step. Walking the schedule through the pure
    configuration calculus tells us exactly which steps will consult the
    oracle, so the scripted replay stays aligned step for step.
    """
    config = explorer.initial_configuration()
    consulted: List[int] = []
    for edge in schedule:
        automaton = explorer.processes[edge.pid]
        action = automaton.next_action(config.process_states[edge.pid])
        index = explorer.object_names.index(action.obj)
        outcomes = explorer.specs[index].responses(
            config.object_states[index], action.operation
        )
        if len(outcomes) > 1:
            consulted.append(edge.choice)
        config = explorer.step(config, edge.pid, edge.choice)
    return consulted


def replay_counterexample(
    explorer: Explorer, witness: Witness, strict: bool = True
) -> RunHistory:
    """Replay a witness schedule through a fresh live :class:`System`.

    Builds the system from the explorer's own specs and (pure, hence
    reusable) automata, drives it with strict scripted adversaries, and
    returns the resulting run history. The history's ``schedule()`` and
    ``choices()`` must equal the witness's — :func:`verify_replay`
    checks exactly that.
    """
    schedule = _edges(witness)
    scheduler = ScriptedScheduler(
        [edge.pid for edge in schedule], strict=strict
    )
    oracle = ScriptedOracle(oracle_script(explorer, schedule), strict=strict)
    objects = dict(zip(explorer.object_names, explorer.specs))
    system = System(objects, explorer.processes, oracle=oracle)
    return system.run(scheduler=scheduler, max_steps=len(schedule))


@dataclass(frozen=True)
class ReplayReport:
    """The outcome of one witness round trip.

    ``matches`` is True iff the replayed run reproduced the witness
    exactly: same pid sequence, same outcome choices, same responses,
    and (for a full counterexample) the same decision map. Any
    discrepancy is listed in ``mismatches``.
    """

    run: RunHistory
    matches: bool
    mismatches: Tuple[str, ...]


def verify_replay(
    explorer: Explorer, witness: Witness, strict: bool = True
) -> ReplayReport:
    """Replay ``witness`` and diff the run against it, step by step."""
    schedule = _edges(witness)
    run = replay_counterexample(explorer, witness, strict=strict)
    mismatches: List[str] = []
    expected_pids: Tuple[ProcessId, ...] = tuple(e.pid for e in schedule)
    if run.schedule() != expected_pids:
        mismatches.append(
            f"schedule: expected {expected_pids}, replayed {run.schedule()}"
        )
    expected_choices = tuple(e.choice for e in schedule)
    if run.choices() != expected_choices:
        mismatches.append(
            f"choices: expected {expected_choices}, replayed {run.choices()}"
        )
    for step, edge in zip(run.steps, schedule):
        if step.response != edge.response:
            mismatches.append(
                f"step {step.index}: response {step.response!r} != "
                f"witness response {edge.response!r}"
            )
    if isinstance(witness, SafetyCounterexample):
        expected_decisions: Dict[ProcessId, Value] = (
            witness.configuration.decisions()
        )
        if run.decisions != expected_decisions:
            mismatches.append(
                f"decisions: expected {expected_decisions}, "
                f"replayed {run.decisions}"
            )
        expected_aborted = set(witness.configuration.aborted())
        if set(run.aborted) != expected_aborted:
            mismatches.append(
                f"aborted: expected {sorted(expected_aborted)}, "
                f"replayed {sorted(run.aborted)}"
            )
    return ReplayReport(
        run=run, matches=not mismatches, mismatches=tuple(mismatches)
    )
