"""Whole-graph valency analysis with shared memoization.

:func:`repro.analysis.valency.classify` answers one configuration's
valency by exploring its reachable subgraph — fine for a handful of
queries, wasteful for the proofs' access pattern (classify *every*
configuration, then hunt for critical ones). :class:`ValencyAnalyzer`
does the whole job in two passes over a single exploration:

1. explore the reachable graph once (forward);
2. propagate decision sets backwards to a fixpoint — each
   configuration's decision set is the union of its own decisions and
   its successors' sets. Cycles are handled by iterating until nothing
   changes (the sets are small and monotone, so this converges
   quickly).

Both passes are int-keyed over the explorer's intern table, and the
fixpoint writes into the explorer's *shared* decision-set table — so a
later :func:`repro.analysis.valency.classify` (or another analyzer on
the same explorer) reuses it instead of recomputing.

On top of the per-configuration sets the analyzer offers the proofs'
vocabulary directly: bivalent configurations, *critical* configurations
(bivalent, every successor univalent — Claim 4.2.5 / 5.2.2), and the
hook-step structure around them (which process's step decides which
way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..errors import AnalysisError
from ..types import Value
from .explorer import Configuration, Edge, ExplorationResult, Explorer
from .valency import BIVALENT, DECISIONLESS, ONE_VALENT, ZERO_VALENT


@dataclass(frozen=True)
class HookStep:
    """One decisive step out of a critical configuration."""

    edge: Edge
    label: str


@dataclass(frozen=True)
class CriticalReport:
    """A critical configuration plus its decisive outgoing steps."""

    configuration: Configuration
    hooks: Tuple[HookStep, ...]

    def directions(self) -> Set[str]:
        return {hook.label for hook in self.hooks}


class ValencyAnalyzer:
    """Classify every reachable configuration of one protocol instance."""

    def __init__(
        self,
        explorer: Explorer,
        initial: Optional[Configuration] = None,
        domain: Tuple[Value, Value] = (0, 1),
        max_configurations: int = 200_000,
    ) -> None:
        self.explorer = explorer
        self.domain = domain
        start = initial if initial is not None else explorer.initial_configuration()
        with obs.span("valency.analyze") as span:
            self.graph: ExplorationResult = explorer.explore(
                start, max_configurations
            )
            if not self.graph.complete:
                raise AnalysisError(
                    "valency analysis needs the complete reachable graph; "
                    "raise max_configurations"
                )
            self._table = explorer.decision_table(exploration=self.graph)
            span.set(configurations=len(self.graph.order_ids))
        obs.counter("valency.analyses")
        obs.counter("valency.configurations", len(self.graph.order_ids))

    # -- queries -------------------------------------------------------------

    def decision_set(self, config: Configuration) -> FrozenSet[Value]:
        """All decision values reachable from ``config`` (memoized)."""
        assert self.graph.intern is not None
        ident = self.graph.intern.get_id(config)
        if ident is None or (
            ident != self.graph.order_ids[0]
            and ident not in self.graph.parent_ids
        ):
            raise AnalysisError(
                "configuration is not in the analyzed reachable graph"
            )
        return self._table[ident]

    def _classify(self, values: FrozenSet[Value]) -> str:
        zero, one = self.domain
        has_zero, has_one = zero in values, one in values
        if has_zero and has_one:
            return BIVALENT
        if has_zero:
            return ZERO_VALENT
        if has_one:
            return ONE_VALENT
        return DECISIONLESS

    def _label_of_id(self, ident: int) -> str:
        return self._classify(self._table[ident])

    def label(self, config: Configuration) -> str:
        return self._classify(self.decision_set(config))

    def bivalent_configurations(self) -> List[Configuration]:
        assert self.graph.intern is not None
        value = self.graph.intern.value
        return [
            value(ident)
            for ident in self.graph.order_ids
            if self._label_of_id(ident) == BIVALENT
        ]

    def critical_configurations(self) -> List[CriticalReport]:
        """Every critical configuration in the reachable graph.

        Critical = bivalent with all successors univalent (the shape
        Claims 4.2.5 / 5.2.2 descend to). Returns each with its hook
        steps labelled by the successor's valence.
        """
        assert self.graph.intern is not None
        value = self.graph.intern.value
        successor_ids = self.graph.successor_ids
        reports: List[CriticalReport] = []
        for ident in self.graph.order_ids:
            if self._label_of_id(ident) != BIVALENT:
                continue
            edges = successor_ids.get(ident, ())
            if not edges:
                # Terminal yet bivalent: only possible when the
                # protocol already violated agreement (two decisions
                # present); not a critical configuration in the proof
                # sense.
                continue
            labels = [
                (edge, self._label_of_id(successor))
                for edge, successor in edges
            ]
            if any(label == BIVALENT for _edge, label in labels):
                continue
            reports.append(
                CriticalReport(
                    configuration=value(ident),
                    hooks=tuple(HookStep(edge, label) for edge, label in labels),
                )
            )
        return reports

    def schedule_to(self, config: Configuration) -> List[Edge]:
        """Witness schedule from the analyzed initial configuration."""
        return self.graph.schedule_to(config)

    def summary(self) -> Dict[str, int]:
        """Counts per valency label over the whole reachable graph."""
        counts: Dict[str, int] = {}
        for ident in self.graph.order_ids:
            label = self._label_of_id(ident)
            counts[label] = counts.get(label, 0) + 1
        return counts
