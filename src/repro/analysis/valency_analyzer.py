"""Whole-graph valency analysis with shared memoization.

:func:`repro.analysis.valency.classify` answers one configuration's
valency by exploring its reachable subgraph — fine for a handful of
queries, wasteful for the proofs' access pattern (classify *every*
configuration, then hunt for critical ones). :class:`ValencyAnalyzer`
does the whole job in two passes over a single exploration:

1. explore the reachable graph once (forward);
2. propagate decision sets backwards to a fixpoint — each
   configuration's decision set is the union of its own decisions and
   its successors' sets. Cycles are handled by iterating until nothing
   changes (the sets are small and monotone, so this converges
   quickly).

On top of the per-configuration sets the analyzer offers the proofs'
vocabulary directly: bivalent configurations, *critical* configurations
(bivalent, every successor univalent — Claim 4.2.5 / 5.2.2), and the
hook-step structure around them (which process's step decides which
way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError
from ..types import Value
from .explorer import Configuration, Edge, ExplorationResult, Explorer
from .valency import BIVALENT, DECISIONLESS, ONE_VALENT, ZERO_VALENT


@dataclass(frozen=True)
class HookStep:
    """One decisive step out of a critical configuration."""

    edge: Edge
    label: str


@dataclass(frozen=True)
class CriticalReport:
    """A critical configuration plus its decisive outgoing steps."""

    configuration: Configuration
    hooks: Tuple[HookStep, ...]

    def directions(self) -> Set[str]:
        return {hook.label for hook in self.hooks}


class ValencyAnalyzer:
    """Classify every reachable configuration of one protocol instance."""

    def __init__(
        self,
        explorer: Explorer,
        initial: Optional[Configuration] = None,
        domain: Tuple[Value, Value] = (0, 1),
        max_configurations: int = 200_000,
    ) -> None:
        self.explorer = explorer
        self.domain = domain
        start = initial if initial is not None else explorer.initial_configuration()
        self.graph: ExplorationResult = explorer.explore(
            start, max_configurations
        )
        if not self.graph.complete:
            raise AnalysisError(
                "valency analysis needs the complete reachable graph; raise "
                "max_configurations"
            )
        self._decisions = self._propagate()

    # -- core computation ---------------------------------------------------

    def _propagate(self) -> Dict[Configuration, FrozenSet[Value]]:
        """Backward fixpoint of reachable decision sets."""
        sets: Dict[Configuration, Set[Value]] = {}
        for config in self.graph.order:
            sets[config] = set(config.decisions().values())

        # Iterate to fixpoint. Process in reverse-BFS order for speed
        # (children of the frontier settle first on acyclic parts).
        changed = True
        while changed:
            changed = False
            for config in self.graph.order:
                merged = sets[config]
                before = len(merged)
                for _edge, successor in self.graph.successors.get(config, []):
                    merged |= sets[successor]
                if len(merged) != before:
                    changed = True
        return {config: frozenset(s) for config, s in sets.items()}

    # -- queries -------------------------------------------------------------

    def decision_set(self, config: Configuration) -> FrozenSet[Value]:
        """All decision values reachable from ``config`` (memoized)."""
        try:
            return self._decisions[config]
        except KeyError:
            raise AnalysisError(
                "configuration is not in the analyzed reachable graph"
            )

    def label(self, config: Configuration) -> str:
        values = self.decision_set(config)
        zero, one = self.domain
        has_zero, has_one = zero in values, one in values
        if has_zero and has_one:
            return BIVALENT
        if has_zero:
            return ZERO_VALENT
        if has_one:
            return ONE_VALENT
        return DECISIONLESS

    def bivalent_configurations(self) -> List[Configuration]:
        return [
            config
            for config in self.graph.order
            if self.label(config) == BIVALENT
        ]

    def critical_configurations(self) -> List[CriticalReport]:
        """Every critical configuration in the reachable graph.

        Critical = bivalent with all successors univalent (the shape
        Claims 4.2.5 / 5.2.2 descend to). Returns each with its hook
        steps labelled by the successor's valence.
        """
        reports: List[CriticalReport] = []
        for config in self.graph.order:
            if self.label(config) != BIVALENT:
                continue
            edges = self.graph.successors.get(config, [])
            if not edges:
                # Terminal yet bivalent: only possible when the
                # protocol already violated agreement (two decisions
                # present); not a critical configuration in the proof
                # sense.
                continue
            labels = [(edge, self.label(successor)) for edge, successor in edges]
            if any(label == BIVALENT for _edge, label in labels):
                continue
            reports.append(
                CriticalReport(
                    configuration=config,
                    hooks=tuple(HookStep(edge, label) for edge, label in labels),
                )
            )
        return reports

    def schedule_to(self, config: Configuration) -> List[Edge]:
        """Witness schedule from the analyzed initial configuration."""
        return self.graph.schedule_to(config)

    def summary(self) -> Dict[str, int]:
        """Counts per valency label over the whole reachable graph."""
        counts: Dict[str, int] = {}
        for config in self.graph.order:
            label = self.label(config)
            counts[label] = counts.get(label, 0) + 1
        return counts
