"""Opt-in symmetry reduction for process-symmetric instances.

Many of the paper's instances are *process-symmetric*: swapping two
processes that run the same automaton with the same input yields a
configuration the adversary cannot distinguish from the original. The
reachable graph then splits into orbits under a permutation group, and
exploring one canonical representative per orbit answers every
orbit-invariant question (decision sets, safety of a symmetric task,
valency labels) on a graph that can be factorially smaller.

:class:`ProcessSymmetry` describes such a group: disjoint *groups* of
interchangeable pids, plus per-object *state permuters* for objects
whose state mentions process identities (the ``n``-PAC's label-indexed
proposal array — see :func:`repro.core.pac.permute_pac_state`). Objects
whose state is pid-free (the ``m``-consensus object's ``(winner,
applied)`` pair) need no permuter: the identity is correct.

Soundness
---------

Quotienting by a permutation ``p`` (``p[i]`` = new pid of old pid
``i``) is sound only when ``p`` is an *automorphism* of the transition
relation, which the constructor cannot fully check. The caller asserts:

1. processes within a group run identical automata modulo their pid —
   same local-state machine, same inputs (use :func:`groups_by_input`),
   with any pid-dependence confined to operation arguments the object
   permuter accounts for (Algorithm 2's ``label = pid + 1``);
2. each supplied object permuter is an automorphism of that object's
   sequential spec: permuting the state commutes with every operation
   (with its pid-labelled arguments relabelled accordingly);
3. objects without a permuter have pid-free states and pid-independent
   operations within each group;
4. any property read off the reduced graph is orbit-invariant — e.g. a
   task whose safety predicate treats grouped processes uniformly.

Factories next to the protocols encode these obligations once:
:func:`repro.protocols.dac_from_pac.algorithm2_symmetry` builds the
correct symmetry for Algorithm 2 instances.

Witnesses from a reduced graph are mapped back to the concrete system
by :meth:`~repro.analysis.explorer.ExplorationResult.schedule_to`, so
``repro.analysis.replay`` verifies them bit-for-bit as usual.

Determinism: the canonical representative is the permuted variant with
the lexicographically least ``repr`` — a pure string comparison, so the
choice (and the reduced BFS order) is independent of
``PYTHONHASHSEED``, preserving the replayability contract (R001).
"""

from __future__ import annotations

from itertools import permutations as _permutations
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import AnalysisError
from ..types import Value
from .explorer import Configuration, Permutation

#: Maps an object state through a process permutation.
StatePermuter = Callable[[Hashable, Permutation], Hashable]


def groups_by_input(
    inputs: Sequence[Value], exclude: Iterable[int] = ()
) -> Tuple[Tuple[int, ...], ...]:
    """Group pids by equal input, excluding distinguished pids.

    The standard way to build the pid groups for a protocol whose
    processes are identical modulo input: processes with equal inputs
    are interchangeable, the ``exclude`` pids (e.g. Algorithm 2's
    distinguished aborter) are never grouped.

    >>> groups_by_input((1, 0, 0, 0), exclude=(0,))
    ((1, 2, 3),)
    """
    excluded = set(exclude)
    by_value: Dict[Value, List[int]] = {}
    for pid, value in enumerate(inputs):
        if pid in excluded:
            continue
        by_value.setdefault(value, []).append(pid)
    return tuple(
        tuple(group) for group in by_value.values() if len(group) > 1
    )


class ProcessSymmetry:
    """A process-permutation group with per-object state permuters.

    ``groups`` are disjoint pid sets whose members are interchangeable;
    the group generated is the direct product of the full symmetric
    groups on each. ``object_permuters`` maps object *names* to
    functions relabelling that object's state under a permutation;
    objects not named are assumed pid-free and left untouched.
    """

    def __init__(
        self,
        n: int,
        groups: Iterable[Iterable[int]],
        object_permuters: Optional[Mapping[str, StatePermuter]] = None,
    ) -> None:
        self.n = n
        self.groups: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(group)) for group in groups
        )
        seen: set = set()
        for group in self.groups:
            for pid in group:
                if not 0 <= pid < n:
                    raise AnalysisError(
                        f"symmetry group pid {pid} outside 0..{n - 1}"
                    )
                if pid in seen:
                    raise AnalysisError(
                        f"symmetry groups must be disjoint; pid {pid} repeats"
                    )
                seen.add(pid)
        self.object_permuters: Dict[str, StatePermuter] = dict(
            object_permuters or {}
        )
        self.permutations: Tuple[Permutation, ...] = tuple(
            self._enumerate_permutations()
        )
        #: configuration -> (canonical representative, mapping perm).
        self._canon_cache: Dict[Configuration, Tuple[Configuration, Permutation]] = {}

    def _enumerate_permutations(self) -> List[Permutation]:
        """Every group element as a full 0..n-1 permutation, identity
        first, in a deterministic order."""
        perms: List[Permutation] = [tuple(range(self.n))]
        for group in self.groups:
            extended: List[Permutation] = []
            for images in _permutations(group):
                mapping = dict(zip(group, images))
                for base in perms:
                    extended.append(
                        tuple(
                            mapping.get(base[i], base[i])
                            for i in range(self.n)
                        )
                    )
            # itertools.permutations yields the identity arrangement
            # first, so extended[0] is always the untouched base order.
            perms = extended
        return perms

    def apply(
        self,
        config: Configuration,
        perm: Permutation,
        object_names: Sequence[str],
    ) -> Configuration:
        """The configuration with every process ``i`` renamed ``perm[i]``
        (and object states relabelled through their permuters)."""
        n = self.n
        states: List[Hashable] = [None] * n
        statuses: List[Tuple] = [None] * n  # type: ignore[list-item]
        for source, image in enumerate(perm):
            states[image] = config.process_states[source]
            statuses[image] = config.statuses[source]
        objects = tuple(
            self._permute_object(name, state, perm)
            for name, state in zip(object_names, config.object_states)
        )
        return Configuration(tuple(states), tuple(statuses), objects)

    def _permute_object(
        self, name: str, state: Hashable, perm: Permutation
    ) -> Hashable:
        permuter = self.object_permuters.get(name)
        if permuter is None:
            return state
        return permuter(state, perm)

    def canonical(
        self, config: Configuration, object_names: Sequence[str]
    ) -> Tuple[Configuration, Permutation]:
        """The orbit representative of ``config`` plus the permutation
        mapping ``config`` onto it (``rep = apply(config, perm)``).

        The representative is chosen by least ``repr`` over the orbit —
        a deterministic, hash-seed-independent order. Memoized per
        configuration.
        """
        cached = self._canon_cache.get(config)
        if cached is not None:
            return cached
        best: Optional[Configuration] = None
        best_key = ""
        best_perm: Permutation = self.permutations[0]
        for perm in self.permutations:
            candidate = self.apply(config, perm, object_names)
            key = repr(
                (
                    candidate.process_states,
                    candidate.statuses,
                    candidate.object_states,
                )
            )
            if best is None or key < best_key:
                best, best_key, best_perm = candidate, key, perm
        assert best is not None
        result = (best, best_perm)
        self._canon_cache[config] = result
        return result
