"""Run auditors: check completed simulation runs against task properties.

The explorer proves properties over *all* schedules of small instances;
these auditors check *individual* runs of big instances (randomized
adversaries, long workloads) — the statistical half of every experiment.

* :func:`audit_task_run` — safety of a finished run against any
  :class:`~repro.protocols.tasks.DecisionTask`;
* :func:`audit_dac_run` — the full ``n``-DAC rubric including
  Nontriviality (needs step counts) and the termination bookkeeping;
* :func:`audit_wait_freedom` — per-process step bounds: a wait-free
  protocol must decide within a known bound of its own steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..runtime.history import RunHistory
from ..protocols.tasks import DacDecisionTask, DecisionTask, SafetyVerdict
from ..types import ProcessId, Value


@dataclass(frozen=True)
class RunAudit:
    """Combined verdict for one run: safety plus liveness bookkeeping."""

    safety: SafetyVerdict
    decided: Tuple[ProcessId, ...]
    aborted: Tuple[ProcessId, ...]
    undecided: Tuple[ProcessId, ...]

    @property
    def ok(self) -> bool:
        return self.safety.ok


def audit_task_run(
    task: DecisionTask,
    inputs: Sequence[Value],
    history: RunHistory,
) -> RunAudit:
    """Audit a finished run's outcomes against ``task``'s safety."""
    safety = task.check_safety(inputs, history.decisions, history.aborted)
    decided = tuple(sorted(history.decisions))
    aborted = tuple(sorted(history.aborted))
    terminated = set(decided) | set(aborted) | set(history.halted)
    undecided = tuple(
        pid for pid in range(task.num_processes) if pid not in terminated
    )
    return RunAudit(
        safety=safety, decided=decided, aborted=aborted, undecided=undecided
    )


def audit_dac_run(
    task: DacDecisionTask,
    inputs: Sequence[Value],
    history: RunHistory,
) -> RunAudit:
    """Audit an ``n``-DAC run: safety *and* Nontriviality."""
    base = audit_task_run(task, inputs, history)
    nontrivial = task.check_nontriviality(
        inputs, history.aborted, history.steps_by_pid
    )
    if nontrivial.ok:
        return base
    merged = SafetyVerdict(
        ok=False, violations=base.safety.violations + nontrivial.violations
    )
    return RunAudit(
        safety=merged,
        decided=base.decided,
        aborted=base.aborted,
        undecided=base.undecided,
    )


@dataclass(frozen=True)
class WaitFreedomAudit:
    """Step counts of processes that terminated vs. the bound."""

    ok: bool
    offenders: Tuple[Tuple[ProcessId, int], ...] = ()


def audit_wait_freedom(
    history: RunHistory,
    step_bound: int,
    exempt: Sequence[ProcessId] = (),
) -> WaitFreedomAudit:
    """Check that every terminated process used at most ``step_bound``
    of its *own* steps.

    ``exempt`` lists processes the bound does not apply to (e.g. the
    non-distinguished n-DAC processes, whose termination guarantee is
    solo-run only, so an adversary may legitimately starve them into
    many retries).
    """
    counts = history.steps_by_pid
    terminated = (
        set(history.decisions) | set(history.aborted) | set(history.halted)
    )
    offenders = tuple(
        (pid, counts.get(pid, 0))
        for pid in sorted(terminated)
        if pid not in exempt and counts.get(pid, 0) > step_bound
    )
    return WaitFreedomAudit(ok=not offenders, offenders=offenders)
