"""Parallel verification engine: fan independent checks over processes.

The repo's heavy workloads — candidate-suite refutation, adversary
sweeps, per-input exhaustive checks, per-input valency descents — are
embarrassingly parallel collections of *independent* explorations.
:class:`VerificationPool` fans such work items out over a
``multiprocessing`` worker pool with:

* **chunked scheduling** — items are batched so each worker round-trip
  amortizes process dispatch over several explorations;
* **deterministic result ordering** — results are merged by work-item
  position (and carry the caller's ``key``), never by completion
  order, so a pooled sweep reports byte-identical output to the serial
  sweep;
* **crash isolation** — an item that raises is returned as a
  structured :class:`WorkFailure` (type, message, traceback) while the
  rest of the sweep completes; a worker process that dies outright is
  reported the same way instead of hanging the sweep.

``jobs <= 1`` executes inline through the *same* item functions, so the
serial path is the parallel path with one worker — equivalence by
construction, not by testing alone. Items whose callables cannot be
pickled (closures, lambdas) also fall back to inline execution.

Work-item callables must be module-level functions: workers import them
by qualified name. The functions at the bottom of this module are the
pool-ready forms of the repo's standard sweeps (Algorithm 2 instance
checks, candidate refutation).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .. import obs
from ..obs.metrics import empty_snapshot


@dataclass(frozen=True)
class WorkItem:
    """One independent verification: ``fn(*args, **kwargs)``.

    ``key`` is the caller's stable identity for the item (inputs tuple,
    candidate name, …); results are merged back in submission order and
    carry the key, so callers never depend on completion order.
    ``fn`` must be a module-level callable for pooled execution.
    """

    key: Hashable
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class WorkFailure:
    """A structured record of one item (or its worker) failing."""

    error_type: str
    message: str
    traceback: str

    def render(self) -> str:
        return f"{self.error_type}: {self.message}"


@dataclass(frozen=True)
class WorkResult:
    """One item's outcome, in submission order."""

    key: Hashable
    index: int
    value: Any = None
    failure: Optional[WorkFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def _run_batch(batch: Sequence[Tuple[int, Callable, tuple, dict]]):
    """Execute one chunk of items inside a worker (or inline).

    Every exception is captured per item — a bad item never takes the
    batch (or the sweep) down with it. Each item runs under its own
    :func:`repro.obs.scoped` metrics scope; the snapshot and wall-clock
    latency travel home in the raw tuple
    ``(index, failure, value, metrics, elapsed)`` so :meth:`run` can
    fold metrics in submission order (identical for inline and pooled
    execution) and report latencies to the trace only.
    """
    out = []
    for index, fn, args, kwargs in batch:
        value = failure = None
        started = time.perf_counter()  # repro: noqa[R001] trace-only latency, never in metrics
        with obs.scoped() as scope:
            try:
                value = fn(*args, **dict(kwargs))
            except Exception as exc:
                failure = WorkFailure(
                    error_type=type(exc).__name__,
                    message=str(exc),
                    traceback=traceback.format_exc(),
                )
        elapsed = time.perf_counter() - started  # repro: noqa[R001] trace-only latency, never in metrics
        out.append((index, failure, value, scope.snapshot(), elapsed))
    return out


def _default_context():
    """Prefer ``fork`` where available (cheap workers, inherited
    imports); fall back to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class VerificationPool:
    """Run independent verification items, serially or across workers.

    ``jobs``: worker count; ``None``/``0`` means ``os.cpu_count()``;
    ``<= 1`` executes inline (no subprocesses). ``chunk_size``: items
    per worker dispatch (default: one coarse chunk per worker — sweep
    items are millisecond-scale, so dispatch overhead dominates any
    load-balancing win from finer chunks).

    After :meth:`run`, ``last_run_parallel`` records whether worker
    processes were actually used (False for inline execution and for
    the unpicklable-item fallback).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        mp_context=None,
    ) -> None:
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs
        self.chunk_size = chunk_size
        self._mp_context = mp_context
        self.last_run_parallel = False

    def _chunks(
        self, tagged: List[Tuple[int, Callable, tuple, dict]]
    ) -> List[List[Tuple[int, Callable, tuple, dict]]]:
        size = self.chunk_size
        if size is None or size <= 0:
            # One chunk per worker: the per-dispatch pickling/IPC cost
            # is on the order of a whole sweep item, so amortizing it
            # over len/jobs items beats the classic 4-chunks-per-worker
            # balancing split for these workloads (see BENCH_perf.json's
            # parallel_sweep_algorithm2 history).
            size = max(1, (len(tagged) + self.jobs - 1) // self.jobs)
        return [tagged[i : i + size] for i in range(0, len(tagged), size)]

    def run(self, items: Sequence[WorkItem]) -> List[WorkResult]:
        """Execute every item; results in submission order.

        The merge is by item position — completion order never leaks
        into the result list, which is what makes pooled sweeps
        byte-identical to serial ones.
        """
        tagged = [
            (index, item.fn, tuple(item.args), dict(item.kwargs))
            for index, item in enumerate(items)
        ]
        self.last_run_parallel = False
        with obs.span("pool.run", items=len(items), jobs=self.jobs) as sp:
            if self.jobs <= 1 or len(tagged) <= 1:
                raw = _run_batch(tagged)
            else:
                raw = self._run_pooled(tagged)
            sp.set(parallel=self.last_run_parallel)
            by_index: Dict[int, Tuple[Optional[WorkFailure], Any, Any, float]] = {
                index: (failure, value, metrics, elapsed)
                for index, failure, value, metrics, elapsed in raw
            }
            # Fold per-item metrics in submission order — never
            # completion order — so pooled sweeps report byte-identical
            # snapshots to serial ones. The jobs-dependent facts
            # (parallel flag, latencies) go to the trace only.
            parent = obs.current()
            results: List[WorkResult] = []
            for index, item in enumerate(items):
                failure, value, metrics, elapsed = by_index[index]
                if parent is not None:
                    parent.registry.merge_snapshot(metrics)
                    parent.registry.counter("pool.items")
                    if failure is not None:
                        parent.registry.counter("pool.failures")
                obs.event(
                    "pool.item",
                    key=repr(item.key),
                    index=index,
                    ok=failure is None,
                    exec_s=round(elapsed, 9),
                )
                results.append(
                    WorkResult(
                        key=item.key, index=index, value=value, failure=failure
                    )
                )
        return results

    def _run_pooled(self, tagged):
        chunks = self._chunks(tagged)
        try:
            pickle.dumps(chunks)
        except Exception:
            # Closures/lambdas cannot cross a process boundary; the
            # inline path runs the same item functions, so results are
            # identical — only the parallelism is lost.
            return _run_batch(tagged)
        context = self._mp_context or _default_context()
        raw = []
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(chunks)), mp_context=context
        ) as executor:
            futures = [executor.submit(_run_batch, chunk) for chunk in chunks]
            for chunk, future in zip(chunks, futures):
                try:
                    raw.extend(future.result())
                except Exception as exc:
                    # The worker process itself died (hard crash,
                    # BrokenProcessPool): report every item of the
                    # chunk as a structured failure instead of hanging
                    # or aborting the sweep.
                    failure = WorkFailure(
                        error_type=type(exc).__name__,
                        message=str(exc),
                        traceback=traceback.format_exc(),
                    )
                    obs.event(
                        "pool.chunk_failure",
                        error=type(exc).__name__,
                        items=len(chunk),
                    )
                    for index, _fn, _args, _kwargs in chunk:
                        raw.append((index, failure, None, empty_snapshot(), 0.0))
        self.last_run_parallel = True
        return raw


def run_work_items(
    items: Sequence[WorkItem],
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[WorkResult]:
    """One-shot convenience wrapper around :class:`VerificationPool`."""
    return VerificationPool(jobs=jobs, chunk_size=chunk_size).run(items)


# -- pool-ready sweep functions ---------------------------------------------
#
# Module-level so workers can import them by qualified name. Each
# rebuilds its instance from primitive arguments — explorers and
# automata never cross the process boundary.


def algorithm2_instance_check(
    n: int,
    inputs: Tuple[Any, ...],
    symmetry: bool = False,
    max_configurations: int = 400_000,
) -> Dict[str, Any]:
    """Full Theorem 4.1 check of one ``(n, inputs)`` instance.

    Safety over all schedules, solo termination for every pid, plus the
    graph size — the per-instance body of ``repro check-algorithm2``.
    The counterexample (if any) is returned *rendered*, so the parent
    process never needs the worker's explorer.
    """
    from ..core.pac import NPacSpec
    from ..protocols.dac_from_pac import (
        algorithm2_processes,
        algorithm2_symmetry,
    )
    from ..protocols.tasks import DacDecisionTask
    from .explorer import Explorer
    from .render import render_counterexample

    inputs = tuple(inputs)
    task = DacDecisionTask(n)
    explorer = Explorer({"PAC": NPacSpec(n)}, algorithm2_processes(inputs))
    sym = algorithm2_symmetry(inputs) if symmetry else None
    counterexample = explorer.check_safety(
        task, inputs, max_configurations=max_configurations, symmetry=sym
    )
    rendered = None
    if counterexample is not None:
        rendered = render_counterexample(explorer, counterexample)
    solo_failures = []
    if counterexample is None:
        for pid in range(n):
            if not explorer.solo_termination(pid):
                solo_failures.append(pid)
    configurations = len(
        explorer.explore(max_configurations=max_configurations, symmetry=sym)
    )
    return {
        "inputs": inputs,
        "ok": counterexample is None and not solo_failures,
        "counterexample": rendered,
        "solo_failures": solo_failures,
        "configurations": configurations,
    }


def candidate_outcome(index: int) -> Dict[str, Any]:
    """Refute (or validate) candidate ``index`` of ``all_candidates()``.

    Returns the candidate's name, expected failure, observed outcome
    (``safety`` / ``liveness`` / ``none``) and the rendered witness —
    the per-candidate body of ``repro refute``.
    """
    from ..protocols.candidates import all_candidates
    from .explorer import Explorer
    from .render import render_counterexample, render_livelock

    candidate = all_candidates()[index]
    explorer = Explorer(candidate.objects, candidate.processes)
    counterexample = explorer.check_safety(candidate.task, candidate.inputs)
    livelock = explorer.find_livelock() if counterexample is None else None
    if counterexample is not None:
        outcome = "safety"
        rendered = render_counterexample(explorer, counterexample)
    elif livelock is not None:
        outcome = "liveness"
        rendered = render_livelock(explorer, livelock)
    else:
        outcome = "none"
        rendered = "no violation found over all schedules (correct protocol)"
    return {
        "name": candidate.name,
        "expected": candidate.expected_failure,
        "outcome": outcome,
        "rendered": rendered,
    }
