"""One-call verification suites: explorer + adversary family + auditors.

The experiments keep repeating a verification recipe:

1. exhaustively model-check safety (and optionally solo termination /
   starvation-freedom) for the small instance;
2. sweep the named adversary family over the larger instance and audit
   every run.

:func:`verify_task_protocol` packages the recipe; it returns a
:class:`SuiteVerdict` with per-phase outcomes and is the engine behind
the protocol-facing tests added after its introduction (earlier tests
spell the recipe out — both forms are kept on purpose, the explicit
ones double as documentation).

Scale-out
---------

Every phase is a collection of *independent* work items — one per
(phase, inputs) or (phase, seed) — executed through
:class:`~repro.analysis.parallel.VerificationPool`:

* ``jobs=1`` (default) runs the items inline, in order;
* ``jobs=N`` fans them over ``N`` worker processes; results merge by
  item key in submission order, so the verdict is byte-identical to
  the serial one (the determinism contract in ``docs/performance.md``);
* an item that *raises* becomes a structured failure folded into its
  phase's outcome (``ok=False`` with the error named in the detail)
  instead of aborting the whole sweep;
* with ``cache=`` an :class:`~repro.analysis.cache.ExplorationCache`,
  successful item results are persisted content-addressed — a warm
  rerun of the same sweep skips re-exploration entirely.

Pooled execution requires ``make_system`` to be picklable (a
module-level factory); closures silently fall back to inline
execution with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import SpecificationError
from ..protocols.tasks import DecisionTask
from ..types import Value, require
from .cache import ExplorationCache, fingerprint
from .parallel import VerificationPool, WorkItem, WorkResult


@dataclass(frozen=True)
class PhaseOutcome:
    """One verification phase's outcome."""

    phase: str
    ok: bool
    detail: str


@dataclass
class SuiteVerdict:
    """All phases, plus an aggregate flag."""

    phases: List[PhaseOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(phase.ok for phase in self.phases)

    def failed_phases(self) -> List[PhaseOutcome]:
        """The failing phases, in recipe (insertion) order."""
        return [phase for phase in self.phases if not phase.ok]


# -- pool-ready phase item functions ----------------------------------------
#
# Module-level so a worker process can import them by qualified name;
# each rebuilds its system from the factory inside the worker.


def _safety_item(
    make_system: Callable,
    task: DecisionTask,
    inputs: Tuple[Value, ...],
    max_configurations: int,
) -> bool:
    """True iff ``inputs`` admits a safety violation."""
    from .explorer import Explorer

    objects, processes = make_system(tuple(inputs))
    explorer = Explorer(objects, processes)
    counterexample = explorer.check_safety(
        task, inputs, max_configurations=max_configurations
    )
    return counterexample is not None


def _livelock_item(
    make_system: Callable,
    inputs: Tuple[Value, ...],
    max_configurations: int,
) -> bool:
    """True iff ``inputs`` admits an adversarial non-deciding loop."""
    from .explorer import Explorer

    objects, processes = make_system(tuple(inputs))
    explorer = Explorer(objects, processes)
    return explorer.find_livelock(max_configurations=max_configurations) is not None


def _solo_item(
    make_system: Callable,
    num_processes: int,
    inputs: Tuple[Value, ...],
) -> Tuple[int, ...]:
    """The pids that fail solo termination at ``inputs``."""
    from .explorer import Explorer

    objects, processes = make_system(tuple(inputs))
    explorer = Explorer(objects, processes)
    return tuple(
        pid
        for pid in range(num_processes)
        if not explorer.solo_termination(pid)
    )


def _simulation_item(
    make_system: Callable,
    task: DecisionTask,
    inputs: Tuple[Value, ...],
    seed: int,
    max_steps: int,
) -> bool:
    """True iff the seeded adversarial run passes its audit."""
    from ..runtime.scheduler import SeededScheduler
    from ..runtime.system import System
    from .properties import audit_task_run

    objects, processes = make_system(tuple(inputs))
    system = System(objects, processes)
    history = system.run(SeededScheduler(seed), max_steps=max_steps)
    return audit_task_run(task, inputs, history).ok


def _task_identity(task: DecisionTask) -> Tuple:
    """A deterministic cache identity for a task (no default reprs)."""
    return (
        type(task).__module__,
        type(task).__qualname__,
        task.num_processes,
        getattr(task, "distinguished", None),
    )


def _factory_identity(make_system: Callable) -> str:
    """A best-effort cache identity for a protocol factory."""
    module = getattr(make_system, "__module__", "?")
    qualname = getattr(
        make_system, "__qualname__", type(make_system).__qualname__
    )
    return f"{module}.{qualname}"


def _run_items(
    items: List[WorkItem],
    pool: VerificationPool,
    cache: Optional[ExplorationCache],
    cache_components: Dict[Any, Dict[str, Any]],
) -> Dict[Any, WorkResult]:
    """Execute items (cache-first), returning results keyed by item key.

    Cached values resolve without touching the pool; misses run
    (pooled or inline) and successful results are stored. Failures are
    never cached — a deterministic failure recomputes on every run, so
    a fixed environment immediately clears it.
    """
    resolved: Dict[Any, WorkResult] = {}
    to_run: List[WorkItem] = []
    fingerprints: Dict[Any, str] = {}
    if cache is not None:
        for item in items:
            fp = fingerprint(**cache_components[item.key])
            fingerprints[item.key] = fp
            payload = cache.get(fp)
            if payload is not None:
                resolved[item.key] = WorkResult(
                    key=item.key, index=len(resolved), value=payload["value"]
                )
            else:
                to_run.append(item)
    else:
        to_run = items
    for result in pool.run(to_run):
        resolved[result.key] = result
        if cache is not None and result.ok:
            cache.put(fingerprints[result.key], {"value": result.value})
    return resolved


def _phase_errors(
    keys: Sequence[Any], resolved: Dict[Any, WorkResult]
) -> List[Tuple[Any, str]]:
    return [
        (key, resolved[key].failure.render())
        for key in keys
        if not resolved[key].ok
    ]


def _error_suffix(errors: List[Tuple[Any, str]]) -> str:
    return f"; errors at {errors}" if errors else ""


def verify_task_protocol(
    task: DecisionTask,
    make_system: Callable[[Tuple[Value, ...]], Tuple[dict, list]],
    exhaustive_inputs: Optional[Sequence[Tuple[Value, ...]]] = None,
    require_wait_free: bool = True,
    require_solo_termination: bool = True,
    simulation_inputs: Optional[Tuple[Value, ...]] = None,
    simulation_seeds: int = 10,
    max_steps: int = 4000,
    max_configurations: int = 400_000,
    jobs: int = 1,
    cache: Optional[ExplorationCache] = None,
    cache_key: Optional[str] = None,
) -> SuiteVerdict:
    """Run the standard verification recipe for one protocol.

    ``make_system(inputs)`` builds ``(object table, process list)``.
    ``exhaustive_inputs`` defaults to the task's own assignment space.
    ``jobs`` fans the per-input/per-seed checks over worker processes;
    ``cache`` persists successful phase results (``cache_key`` names
    the protocol — defaults to the factory's qualified name).
    """
    verdict = SuiteVerdict()

    inputs_list = [
        tuple(inputs)
        for inputs in (
            exhaustive_inputs
            if exhaustive_inputs is not None
            else task.input_assignments()
        )
    ]
    require(bool(inputs_list), SpecificationError, "no input assignments")

    pool = VerificationPool(jobs=jobs)
    if cache_key is None:
        cache_key = _factory_identity(make_system)
    base_components = {
        "suite": "verify_task_protocol",
        "protocol": cache_key,
        "task": _task_identity(task),
        "max_configurations": max_configurations,
    }

    items: List[WorkItem] = []
    components: Dict[Any, Dict[str, Any]] = {}

    def add_item(phase: str, subkey: Tuple, fn: Callable, args: Tuple) -> Any:
        key = (phase, subkey)
        items.append(WorkItem(key=key, fn=fn, args=args))
        parts = dict(base_components)
        parts["phase"] = phase
        parts["subkey"] = subkey
        components[key] = parts
        return key

    safety_keys = [
        add_item(
            "exhaustive-safety",
            (inputs,),
            _safety_item,
            (make_system, task, inputs, max_configurations),
        )
        for inputs in inputs_list
    ]
    livelock_keys = (
        [
            add_item(
                "no-livelock",
                (inputs,),
                _livelock_item,
                (make_system, inputs, max_configurations),
            )
            for inputs in inputs_list
        ]
        if require_wait_free
        else []
    )
    solo_keys = (
        [
            add_item(
                "solo-termination",
                (inputs,),
                _solo_item,
                (make_system, task.num_processes, inputs),
            )
            for inputs in inputs_list
        ]
        if require_solo_termination
        else []
    )
    simulation_keys = (
        [
            add_item(
                "randomized-adversaries",
                (tuple(simulation_inputs), seed),
                _simulation_item,
                (make_system, task, tuple(simulation_inputs), seed, max_steps),
            )
            for seed in range(simulation_seeds)
        ]
        if simulation_inputs is not None
        else []
    )

    resolved = _run_items(items, pool, cache, components)

    # Phase 1: exhaustive safety.
    bad_inputs = [
        key[1][0]
        for key in safety_keys
        if resolved[key].ok and resolved[key].value
    ]
    errors = _phase_errors(safety_keys, resolved)
    verdict.phases.append(
        PhaseOutcome(
            "exhaustive-safety",
            not bad_inputs and not errors,
            f"{len(inputs_list)} assignments"
            + (f"; violations at {bad_inputs}" if bad_inputs else "")
            + _error_suffix(errors),
        )
    )

    # Phase 2: starvation-freedom (wait-free protocols only).
    if require_wait_free:
        starving = [
            key[1][0]
            for key in livelock_keys
            if resolved[key].ok and resolved[key].value
        ]
        errors = _phase_errors(livelock_keys, resolved)
        verdict.phases.append(
            PhaseOutcome(
                "no-livelock",
                not starving and not errors,
                f"checked {len(inputs_list)} assignments"
                + (f"; loops at {starving}" if starving else "")
                + _error_suffix(errors),
            )
        )

    # Phase 3: solo termination.
    if require_solo_termination:
        stuck = [
            (key[1][0], pid)
            for key in solo_keys
            if resolved[key].ok
            for pid in resolved[key].value
        ]
        errors = _phase_errors(solo_keys, resolved)
        verdict.phases.append(
            PhaseOutcome(
                "solo-termination",
                not stuck and not errors,
                f"every process, every assignment"
                + (f"; stuck: {stuck}" if stuck else "")
                + _error_suffix(errors),
            )
        )

    # Phase 4: randomized adversaries on the nominated instance.
    if simulation_inputs is not None:
        failures = sum(
            1
            for key in simulation_keys
            if resolved[key].ok and not resolved[key].value
        )
        errors = _phase_errors(simulation_keys, resolved)
        verdict.phases.append(
            PhaseOutcome(
                "randomized-adversaries",
                failures == 0 and not errors,
                f"{simulation_seeds} seeds, {failures} failures"
                + _error_suffix(errors),
            )
        )

    return verdict
