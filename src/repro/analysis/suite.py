"""One-call verification suites: explorer + adversary family + auditors.

The experiments keep repeating a verification recipe:

1. exhaustively model-check safety (and optionally solo termination /
   starvation-freedom) for the small instance;
2. sweep the named adversary family over the larger instance and audit
   every run.

:func:`verify_task_protocol` packages the recipe; it returns a
:class:`SuiteVerdict` with per-phase outcomes and is the engine behind
the protocol-facing tests added after its introduction (earlier tests
spell the recipe out — both forms are kept on purpose, the explicit
ones double as documentation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import SpecificationError
from ..protocols.tasks import DecisionTask
from ..runtime.system import System
from ..types import Value, require
from .explorer import Explorer
from .properties import audit_task_run


@dataclass(frozen=True)
class PhaseOutcome:
    """One verification phase's outcome."""

    phase: str
    ok: bool
    detail: str


@dataclass
class SuiteVerdict:
    """All phases, plus an aggregate flag."""

    phases: List[PhaseOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(phase.ok for phase in self.phases)

    def failed_phases(self) -> List[PhaseOutcome]:
        return [phase for phase in self.phases if not phase.ok]


def verify_task_protocol(
    task: DecisionTask,
    make_system: Callable[[Tuple[Value, ...]], Tuple[dict, list]],
    exhaustive_inputs: Optional[Sequence[Tuple[Value, ...]]] = None,
    require_wait_free: bool = True,
    require_solo_termination: bool = True,
    simulation_inputs: Optional[Tuple[Value, ...]] = None,
    simulation_seeds: int = 10,
    max_steps: int = 4000,
    max_configurations: int = 400_000,
) -> SuiteVerdict:
    """Run the standard verification recipe for one protocol.

    ``make_system(inputs)`` builds ``(object table, process list)``.
    ``exhaustive_inputs`` defaults to the task's own assignment space.
    """
    verdict = SuiteVerdict()

    inputs_list = list(
        exhaustive_inputs
        if exhaustive_inputs is not None
        else task.input_assignments()
    )
    require(bool(inputs_list), SpecificationError, "no input assignments")

    # Phase 1: exhaustive safety.
    bad_inputs = []
    for inputs in inputs_list:
        objects, processes = make_system(tuple(inputs))
        explorer = Explorer(objects, processes)
        counterexample = explorer.check_safety(
            task, inputs, max_configurations=max_configurations
        )
        if counterexample is not None:
            bad_inputs.append(tuple(inputs))
    verdict.phases.append(
        PhaseOutcome(
            "exhaustive-safety",
            not bad_inputs,
            f"{len(inputs_list)} assignments"
            + (f"; violations at {bad_inputs}" if bad_inputs else ""),
        )
    )

    # Phase 2: starvation-freedom (wait-free protocols only).
    if require_wait_free:
        starving = []
        for inputs in inputs_list:
            objects, processes = make_system(tuple(inputs))
            explorer = Explorer(objects, processes)
            if explorer.find_livelock(max_configurations=max_configurations):
                starving.append(tuple(inputs))
        verdict.phases.append(
            PhaseOutcome(
                "no-livelock",
                not starving,
                f"checked {len(inputs_list)} assignments"
                + (f"; loops at {starving}" if starving else ""),
            )
        )

    # Phase 3: solo termination.
    if require_solo_termination:
        stuck = []
        for inputs in inputs_list:
            objects, processes = make_system(tuple(inputs))
            explorer = Explorer(objects, processes)
            for pid in range(task.num_processes):
                if not explorer.solo_termination(pid):
                    stuck.append((tuple(inputs), pid))
        verdict.phases.append(
            PhaseOutcome(
                "solo-termination",
                not stuck,
                f"every process, every assignment"
                + (f"; stuck: {stuck}" if stuck else ""),
            )
        )

    # Phase 4: randomized adversaries on the nominated instance.
    if simulation_inputs is not None:
        from ..runtime.scheduler import SeededScheduler

        failures = 0
        for seed in range(simulation_seeds):
            objects, processes = make_system(tuple(simulation_inputs))
            system = System(objects, processes)
            history = system.run(SeededScheduler(seed), max_steps=max_steps)
            if not audit_task_run(task, simulation_inputs, history).ok:
                failures += 1
        verdict.phases.append(
            PhaseOutcome(
                "randomized-adversaries",
                failures == 0,
                f"{simulation_seeds} seeds, {failures} failures",
            )
        )

    return verdict
