"""Bounded exhaustive exploration of system configurations.

This module mechanizes the configuration calculus of the paper's
bivalency proofs. A :class:`Configuration` is an immutable value —
process local states and statuses plus object states — and the
:class:`Explorer` computes its successor relation exactly as the proofs
do: the adversary picks which process moves *and*, for nondeterministic
objects (the 2-SA), which allowed response it receives.

On top of the raw graph the explorer offers:

* :meth:`Explorer.explore` — the reachable graph (bounded), with parent
  pointers so any configuration can be turned into a concrete schedule;
* :meth:`Explorer.check_safety` — audit a
  :class:`~repro.protocols.tasks.DecisionTask`'s safety predicate on
  every reachable configuration, returning a violating schedule if one
  exists;
* :meth:`Explorer.find_livelock` — find a reachable cycle in which
  processes keep stepping without deciding (the adversarial infinite
  runs the proofs construct);
* :meth:`Explorer.solo_termination` — check the solo-run termination
  rubric (n-DAC Termination (a)/(b)).

Valency computations live in :mod:`repro.analysis.valency`, built on
:meth:`Explorer.decision_values`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import AnalysisError, ExplorationBudgetExceeded
from ..objects.spec import SequentialSpec
from ..runtime.events import Abort, Decide, Halt, Invoke
from ..runtime.process import ProcessAutomaton
from ..types import ProcessId, Value
from ..protocols.tasks import DecisionTask, SafetyVerdict

#: Process status encodings inside a configuration (hashable tuples).
RUNNING = ("running",)
HALTED = ("halted",)
ABORTED = ("aborted",)


def _decided(value: Value) -> Tuple[str, Value]:
    return ("decided", value)


@dataclass(frozen=True)
class Configuration:
    """An immutable global state: local states, statuses, object states.

    ``statuses[i]`` is one of ``RUNNING``, ``HALTED``, ``ABORTED`` or
    ``("decided", v)``. Object states are ordered by the explorer's
    fixed object-name order.
    """

    process_states: Tuple[Hashable, ...]
    statuses: Tuple[Tuple, ...]
    object_states: Tuple[Hashable, ...]

    def decisions(self) -> Dict[ProcessId, Value]:
        """pid → decided value, for the processes decided *in* this
        configuration."""
        return {
            pid: status[1]
            for pid, status in enumerate(self.statuses)
            if status[0] == "decided"
        }

    def aborted(self) -> Tuple[ProcessId, ...]:
        return tuple(
            pid for pid, status in enumerate(self.statuses) if status is ABORTED
        )

    def enabled(self) -> Tuple[ProcessId, ...]:
        return tuple(
            pid for pid, status in enumerate(self.statuses) if status is RUNNING
        )

    def is_quiescent(self) -> bool:
        return not self.enabled()


@dataclass(frozen=True)
class Edge:
    """One transition: process ``pid`` moved, adversary chose outcome
    ``choice``, object answered ``response``."""

    pid: ProcessId
    choice: int
    response: Value


@dataclass
class ExplorationResult:
    """The reachable (bounded) configuration graph.

    ``parents`` maps each configuration to one (parent, edge) pair —
    enough to reconstruct a witness schedule with :func:`schedule_to`.
    ``complete`` is False when a budget truncated the search, in which
    case absence of a violation is *not* a proof.

    ``order`` lists the configurations in BFS discovery order.
    Analyses that *select* a configuration (the counterexample
    ``check_safety`` returns, the livelock entry) must iterate ``order``
    rather than the ``configurations`` set: set iteration order depends
    on ``PYTHONHASHSEED``, and a witness whose identity changes between
    interpreter runs cannot be replayed bit-for-bit (lint rule R001).
    """

    initial: Configuration
    order: List[Configuration] = field(default_factory=list)
    configurations: Set[Configuration] = field(default_factory=set)
    successors: Dict[Configuration, List[Tuple[Edge, Configuration]]] = field(
        default_factory=dict
    )
    parents: Dict[Configuration, Tuple[Configuration, Edge]] = field(
        default_factory=dict
    )
    complete: bool = True

    def schedule_to(self, target: Configuration) -> List[Edge]:
        """Reconstruct the schedule (edge sequence) reaching ``target``."""
        if target not in self.configurations:
            raise AnalysisError("target configuration was never reached")
        edges: List[Edge] = []
        cursor = target
        while cursor != self.initial:
            parent, edge = self.parents[cursor]
            edges.append(edge)
            cursor = parent
        edges.reverse()
        return edges

    def __len__(self) -> int:
        return len(self.configurations)


@dataclass(frozen=True)
class SafetyCounterexample:
    """A reachable configuration violating a task's safety predicate."""

    configuration: Configuration
    verdict: SafetyVerdict
    schedule: Tuple[Edge, ...]


@dataclass(frozen=True)
class Livelock:
    """A reachable cycle in which processes step without deciding.

    ``prefix`` reaches ``entry``; following ``cycle`` from ``entry``
    returns to it. ``moving`` are the pids that take steps inside the
    cycle — each takes infinitely many steps without deciding when the
    adversary loops forever.
    """

    entry: Configuration
    prefix: Tuple[Edge, ...]
    cycle: Tuple[Edge, ...]
    moving: FrozenSet[ProcessId]


class Explorer:
    """Exhaustive (bounded) explorer for one protocol instance.

    ``objects`` maps names to specs; ``processes`` must be pure automata
    (``supports_snapshot``), which is what makes configurations values.
    """

    def __init__(
        self,
        objects: Mapping[str, SequentialSpec],
        processes: Sequence[ProcessAutomaton],
    ) -> None:
        for automaton in processes:
            if not automaton.supports_snapshot:
                raise AnalysisError(
                    f"process {automaton.pid} is generator-based and cannot "
                    f"be model-checked; use a ProcessAutomaton"
                )
        pids = [automaton.pid for automaton in processes]
        if pids != list(range(len(pids))):
            raise AnalysisError(
                f"explorer requires densely numbered pids 0..n-1, got {pids}"
            )
        self.object_names: Tuple[str, ...] = tuple(sorted(objects))
        self.specs: Tuple[SequentialSpec, ...] = tuple(
            objects[name] for name in self.object_names
        )
        self._index_of = {name: i for i, name in enumerate(self.object_names)}
        self.processes: Tuple[ProcessAutomaton, ...] = tuple(processes)

    # -- configuration construction -----------------------------------------

    def initial_configuration(self) -> Configuration:
        states = tuple(auto.initial_state() for auto in self.processes)
        statuses = tuple(RUNNING for _ in self.processes)
        objects = tuple(spec.initial_state() for spec in self.specs)
        return self._absorb(Configuration(states, statuses, objects))

    def _absorb(self, config: Configuration) -> Configuration:
        """Settle local actions: decided/aborted/halted processes are
        marked immediately (decisions are not shared-memory steps)."""
        statuses = list(config.statuses)
        changed = False
        for pid, automaton in enumerate(self.processes):
            if statuses[pid] is not RUNNING:
                continue
            action = automaton.next_action(config.process_states[pid])
            if isinstance(action, Decide):
                statuses[pid] = _decided(action.value)
                changed = True
            elif isinstance(action, Abort):
                statuses[pid] = ABORTED
                changed = True
            elif isinstance(action, Halt):
                statuses[pid] = HALTED
                changed = True
        if not changed:
            return config
        return Configuration(
            config.process_states, tuple(statuses), config.object_states
        )

    def successors(
        self, config: Configuration
    ) -> List[Tuple[Edge, Configuration]]:
        """All (edge, configuration) pairs one adversary step away."""
        result: List[Tuple[Edge, Configuration]] = []
        for pid in config.enabled():
            automaton = self.processes[pid]
            action = automaton.next_action(config.process_states[pid])
            if not isinstance(action, Invoke):
                raise AnalysisError(
                    f"process {pid} has unabsorbed local action {action!r}"
                )
            obj_index = self._index_of.get(action.obj)
            if obj_index is None:
                raise AnalysisError(
                    f"process {pid} invoked unknown object {action.obj!r}"
                )
            spec = self.specs[obj_index]
            outcomes = spec.responses(
                config.object_states[obj_index], action.operation
            )
            for choice, (obj_state, response) in enumerate(outcomes):
                local = automaton.transition(
                    config.process_states[pid], response
                )
                states = (
                    config.process_states[:pid]
                    + (local,)
                    + config.process_states[pid + 1 :]
                )
                objects = (
                    config.object_states[:obj_index]
                    + (obj_state,)
                    + config.object_states[obj_index + 1 :]
                )
                successor = self._absorb(
                    Configuration(states, config.statuses, objects)
                )
                result.append((Edge(pid, choice, response), successor))
        return result

    def step(
        self, config: Configuration, pid: ProcessId, choice: int = 0
    ) -> Configuration:
        """Follow one specific edge (process ``pid``, outcome ``choice``)."""
        for edge, successor in self.successors(config):
            if edge.pid == pid and edge.choice == choice:
                return successor
        raise AnalysisError(
            f"no successor for pid={pid} choice={choice} from this "
            f"configuration (enabled: {config.enabled()})"
        )

    # -- graph exploration ---------------------------------------------------

    def explore(
        self,
        initial: Optional[Configuration] = None,
        max_configurations: int = 200_000,
        strict: bool = False,
    ) -> ExplorationResult:
        """BFS the reachable configuration graph from ``initial``.

        Stops at ``max_configurations`` (marking the result incomplete,
        or raising in ``strict`` mode).
        """
        start = initial if initial is not None else self.initial_configuration()
        result = ExplorationResult(initial=start)
        result.configurations.add(start)
        result.order.append(start)
        frontier: List[Configuration] = [start]
        while frontier:
            next_frontier: List[Configuration] = []
            for config in frontier:
                edges = self.successors(config)
                result.successors[config] = edges
                for edge, successor in edges:
                    if successor in result.configurations:
                        continue
                    if len(result.configurations) >= max_configurations:
                        if strict:
                            raise ExplorationBudgetExceeded(
                                f"exceeded {max_configurations} configurations"
                            )
                        result.complete = False
                        return result
                    result.configurations.add(successor)
                    result.order.append(successor)
                    result.parents[successor] = (config, edge)
                    next_frontier.append(successor)
            frontier = next_frontier
        return result

    # -- analyses ------------------------------------------------------------

    def check_safety(
        self,
        task: DecisionTask,
        inputs: Sequence[Value],
        initial: Optional[Configuration] = None,
        max_configurations: int = 200_000,
    ) -> Optional[SafetyCounterexample]:
        """Audit safety at every reachable configuration.

        Returns a counterexample (with its witness schedule) or None. A
        None from an incomplete exploration raises — absence of evidence
        under a truncated search is not evidence.
        """
        exploration = self.explore(initial, max_configurations)
        # BFS order, not set order: the returned counterexample must be
        # the same one on every run regardless of PYTHONHASHSEED.
        for config in exploration.order:
            verdict = task.check_safety(
                inputs, config.decisions(), config.aborted()
            )
            if not verdict.ok:
                return SafetyCounterexample(
                    configuration=config,
                    verdict=verdict,
                    schedule=tuple(exploration.schedule_to(config)),
                )
        if not exploration.complete:
            raise ExplorationBudgetExceeded(
                "no violation found, but the exploration was truncated; "
                "raise max_configurations"
            )
        return None

    def decision_values(
        self,
        config: Configuration,
        pid: Optional[ProcessId] = None,
        max_configurations: int = 200_000,
    ) -> FrozenSet[Value]:
        """All values decided anywhere in the subgraph reachable from
        ``config`` (restricted to ``pid``'s decisions if given).

        This is the semantic core of valency: a configuration is
        v-valent iff ``decision_values`` is a subset of ``{v}``.
        """
        exploration = self.explore(config, max_configurations)
        if not exploration.complete:
            raise ExplorationBudgetExceeded(
                "decision_values needs a complete subgraph; raise the budget"
            )
        values: Set[Value] = set()
        for reached in exploration.order:
            for decider, value in reached.decisions().items():
                if pid is None or decider == pid:
                    values.add(value)
        return frozenset(values)

    def find_livelock(
        self,
        initial: Optional[Configuration] = None,
        max_configurations: int = 200_000,
        require_undecided_mover: bool = True,
    ) -> Optional[Livelock]:
        """Find a reachable cycle — an adversarial infinite run.

        With ``require_undecided_mover`` (default) the cycle must move
        at least one process that never decides inside it, i.e. a
        genuine liveness violation witness ("takes infinitely many steps
        without deciding").
        """
        exploration = self.explore(initial, max_configurations)
        if not exploration.complete:
            raise ExplorationBudgetExceeded(
                "livelock search needs a complete graph; raise the budget"
            )
        # Iterative DFS with colors to find a back edge.
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[Configuration, int] = {
            c: WHITE for c in exploration.order
        }
        on_path: List[Tuple[Configuration, Edge]] = []
        start = exploration.initial

        stack: List[Tuple[Configuration, int]] = [(start, 0)]
        color[start] = GRAY
        while stack:
            config, edge_index = stack[-1]
            edges = exploration.successors.get(config, [])
            if edge_index >= len(edges):
                color[config] = BLACK
                stack.pop()
                if on_path:
                    on_path.pop()
                continue
            stack[-1] = (config, edge_index + 1)
            edge, successor = edges[edge_index]
            if color.get(successor, WHITE) == GRAY:
                # Back edge: cycle successor -> ... -> config -> successor.
                cycle_edges: List[Edge] = []
                collecting = False
                for path_config, path_edge in on_path:
                    if path_config == successor:
                        collecting = True
                    if collecting:
                        cycle_edges.append(path_edge)
                cycle_edges.append(edge)
                moving = frozenset(e.pid for e in cycle_edges)
                undecided = {
                    pid
                    for pid in sorted(moving)
                    if successor.statuses[pid] is RUNNING
                }
                if not require_undecided_mover or undecided:
                    return Livelock(
                        entry=successor,
                        prefix=tuple(exploration.schedule_to(successor)),
                        cycle=tuple(cycle_edges),
                        moving=moving,
                    )
                continue
            if color.get(successor, WHITE) == WHITE:
                color[successor] = GRAY
                on_path.append((config, edge))
                stack.append((successor, 0))
        return None

    def solo_termination(
        self,
        pid: ProcessId,
        initial: Optional[Configuration] = None,
        max_configurations: int = 50_000,
    ) -> bool:
        """Does ``pid`` decide (or abort) in *every* solo run from here?

        Explores the subgraph where only ``pid`` moves; True iff every
        maximal solo path ends with ``pid`` terminated and the subgraph
        is acyclic (a solo cycle = a solo run that never decides). This
        is n-DAC Termination (a)/(b) and the "q-solo history" device the
        proofs invoke constantly.
        """
        start = initial if initial is not None else self.initial_configuration()
        seen: Set[Configuration] = set()
        path: Set[Configuration] = set()

        def terminated(config: Configuration) -> bool:
            return config.statuses[pid] is not RUNNING

        def dfs(config: Configuration) -> bool:
            if terminated(config):
                return True
            if config in path:
                return False  # solo cycle: pid steps forever undecided
            if config in seen:
                return True
            if len(seen) >= max_configurations:
                raise ExplorationBudgetExceeded(
                    "solo_termination budget exceeded"
                )
            seen.add(config)
            path.add(config)
            edges = [
                (edge, successor)
                for edge, successor in self.successors(config)
                if edge.pid == pid
            ]
            if not edges:
                # pid is enabled but has no successor — cannot happen for
                # total objects; treat as non-termination.
                path.discard(config)
                return False
            verdict = all(dfs(successor) for _, successor in edges)
            path.discard(config)
            return verdict

        return dfs(start)
