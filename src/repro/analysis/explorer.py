"""Bounded exhaustive exploration of system configurations.

This module mechanizes the configuration calculus of the paper's
bivalency proofs. A :class:`Configuration` is an immutable value —
process local states and statuses plus object states — and the
:class:`Explorer` computes its successor relation exactly as the proofs
do: the adversary picks which process moves *and*, for nondeterministic
objects (the 2-SA), which allowed response it receives.

On top of the raw graph the explorer offers:

* :meth:`Explorer.explore` — the reachable graph (bounded), with parent
  pointers so any configuration can be turned into a concrete schedule;
* :meth:`Explorer.check_safety` — audit a
  :class:`~repro.protocols.tasks.DecisionTask`'s safety predicate on
  every reachable configuration, returning a violating schedule if one
  exists;
* :meth:`Explorer.find_livelock` — find a reachable cycle in which
  processes keep stepping without deciding (the adversarial infinite
  runs the proofs construct);
* :meth:`Explorer.solo_termination` — check the solo-run termination
  rubric (n-DAC Termination (a)/(b)).

Valency computations live in :mod:`repro.analysis.valency`, built on
:meth:`Explorer.decision_values`.

Fast core
---------

The explorer is the hot path of every exhaustive verdict. Since the
packed-kernel rework its bookkeeping is built on four layers (see
``docs/performance.md``):

* **packed encoding** — every configuration is a fixed-width row of
  small integer codes (one per process local state, process status, and
  object state; :mod:`repro.analysis.kernel.encoding`), interned to a
  dense id by the kernel backend. The PR-2 ``InternTable`` survives as
  :class:`PackedConfigTable`, the same bijection API backed by rows;
* **batch frontier expansion** — :meth:`explore` hands the whole BFS to
  :meth:`KernelBackend.run_bfs`, which returns discovery order, parent
  edge triples, and truncation state in one call; applying a transition
  inside the kernel is integer arithmetic on three fields, and
  ``Configuration`` dataclasses are materialized lazily only at the API
  boundary (witness traces, result views, cache portability);
* **successor memoization** — protocol semantics (invoke resolution,
  outcome enumeration) are computed once per ``(pid, local state,
  object state)`` and replayed from flat delta tables; object-level
  views (:meth:`successors`, :meth:`step`) stay memoized per id;
* **symmetry reduction** (opt-in) — :meth:`explore` accepts a
  :class:`~repro.analysis.symmetry.ProcessSymmetry` and then walks only
  canonical representatives of process-permutation orbits; witness
  schedules are mapped back through the accumulated permutations so
  they replay bit-for-bit on the *unreduced* system.

Two kernel backends implement the same contract — ``python`` (flat
big-int words) and ``compiled`` (a best-effort C extension) — selected
via ``Explorer(kernel=...)``, the ``REPRO_KERNEL`` environment
variable, or ``--kernel`` on the CLI. Both allocate ids in discovery
order and derive edges through the same callbacks, so orders, verdicts,
digests and cache keys are byte-identical across backends.

In unreduced mode all results are bit-identical to the naive
calculus: ``ExplorationResult.order`` is BFS discovery order, and
every analysis that selects a witness iterates that order, never a
hash-seeded set (lint rule R001).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from .. import obs
from ..errors import AnalysisError, ExplorationBudgetExceeded
from ..objects.spec import SequentialSpec
from ..runtime.events import Abort, Decide, Halt, Invoke
from ..runtime.process import ProcessAutomaton
from ..types import ProcessId, Value
from ..protocols.tasks import DecisionTask, SafetyVerdict
from .kernel import (
    PackedEncoder,
    ProtocolTables,
    compile_tables,
    make_backend,
    select_tables,
    select_threads,
)
from .kernel.encoding import FIELD_BITS  # noqa: F401  (re-exported for docs)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .symmetry import ProcessSymmetry

#: Process status encodings inside a configuration (hashable tuples).
RUNNING = ("running",)
HALTED = ("halted",)
ABORTED = ("aborted",)

#: A process permutation: ``perm[i]`` is the new pid of old pid ``i``.
Permutation = Tuple[int, ...]

#: Status canonicalization for rehydrated graphs: statuses loaded from
#: a cache or a worker arrive as equal-but-distinct tuples, while the
#: calculus compares them by identity (``status is RUNNING``).
_STATUS_SINGLETONS = {RUNNING: RUNNING, HALTED: HALTED, ABORTED: ABORTED}


def _decided(value: Value) -> Tuple[str, Value]:
    return ("decided", value)


@dataclass(frozen=True)
class Configuration:
    """An immutable global state: local states, statuses, object states.

    ``statuses[i]`` is one of ``RUNNING``, ``HALTED``, ``ABORTED`` or
    ``("decided", v)``. Object states are ordered by the explorer's
    fixed object-name order.
    """

    process_states: Tuple[Hashable, ...]
    statuses: Tuple[Tuple, ...]
    object_states: Tuple[Hashable, ...]

    def __hash__(self) -> int:
        # Configurations are hashed constantly (intern table, result
        # views); the deep tuple hash is computed once and cached on
        # the instance. Sound because the dataclass is frozen.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            digest = hash(
                (self.process_states, self.statuses, self.object_states)
            )
            object.__setattr__(self, "_hash", digest)
            return digest

    def __getstate__(self) -> Dict[str, Hashable]:
        # The cached hash must never cross a process or disk boundary:
        # tuple hashes depend on PYTHONHASHSEED, so a pickled _hash
        # would corrupt dict lookups in the receiving interpreter.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def decisions(self) -> Dict[ProcessId, Value]:
        """pid → decided value, for the processes decided *in* this
        configuration."""
        return {
            pid: status[1]
            for pid, status in enumerate(self.statuses)
            if status[0] == "decided"
        }

    def aborted(self) -> Tuple[ProcessId, ...]:
        return tuple(
            pid for pid, status in enumerate(self.statuses) if status is ABORTED
        )

    def enabled(self) -> Tuple[ProcessId, ...]:
        return tuple(
            pid for pid, status in enumerate(self.statuses) if status is RUNNING
        )

    def is_quiescent(self) -> bool:
        return not self.enabled()


@dataclass(frozen=True)
class Edge:
    """One transition: process ``pid`` moved, adversary chose outcome
    ``choice``, object answered ``response``."""

    pid: ProcessId
    choice: int
    response: Value


class PackedConfigTable:
    """The ``InternTable`` bijection, backed by packed kernel rows.

    Keeps the exact PR-2 API (``intern``/``canonical``/``id_of``/
    ``get_id``/``value``/``in``/``len``) so every analysis keyed on
    intern ids works unchanged, but ids are allocated by the kernel
    backend over structural integer rows. ``Configuration`` objects are
    materialized lazily: :meth:`value` decodes a row on first request
    and caches the instance, and configurations interned *as objects*
    keep their identity (``canonical`` returns the first-seen object,
    which is what lets status singletons survive round trips).
    """

    __slots__ = ("_encoder", "_backend", "_values")

    def __init__(self, encoder: PackedEncoder, backend) -> None:
        self._encoder = encoder
        self._backend = backend
        #: cid -> first-seen/decoded Configuration (None until needed).
        self._values: List[Optional[Configuration]] = []

    def intern(self, config: Configuration) -> int:
        """Return the id for ``config``, allocating one if it is new."""
        row = self._encoder.encode(
            config.process_states, config.statuses, config.object_states
        )
        cid = self._backend.intern_row(row)
        values = self._values
        if cid >= len(values):
            values.extend([None] * (cid + 1 - len(values)))
        if values[cid] is None:
            values[cid] = config
        return cid

    def canonical(self, config: Configuration) -> Configuration:
        """The first-seen object equal to ``config`` (identity intern)."""
        return self._values[self.intern(config)]  # type: ignore[return-value]

    def id_of(self, config: Configuration) -> int:
        """The id of an already-interned value (KeyError if unseen)."""
        ident = self.get_id(config)
        if ident is None:
            raise KeyError(config)
        return ident

    def get_id(self, config: Configuration) -> Optional[int]:
        """The id of ``config`` or None — never allocates."""
        row = self._encoder.peek(
            config.process_states, config.statuses, config.object_states
        )
        if row is None:
            return None
        return self._backend.find_row(row)

    def value(self, ident: int) -> Configuration:
        """The configuration with id ``ident`` (decoded lazily, once)."""
        values = self._values
        if ident >= len(values):
            values.extend([None] * (ident + 1 - len(values)))
        config = values[ident]
        if config is None:
            states, statuses, objects = self._encoder.decode(
                self._backend.row(ident)
            )
            config = Configuration(states, statuses, objects)
            values[ident] = config
        return config

    def __contains__(self, config: Configuration) -> bool:
        return self.get_id(config) is not None

    def __len__(self) -> int:
        return len(self._backend)


class ExplorationResult:
    """The reachable (bounded) configuration graph.

    ``parents`` maps each configuration to one (parent, edge) pair —
    enough to reconstruct a witness schedule with :func:`schedule_to`.
    ``complete`` is False when a budget truncated the search, in which
    case absence of a violation is *not* a proof.

    ``order`` lists the configurations in BFS discovery order.
    Analyses that *select* a configuration (the counterexample
    ``check_safety`` returns, the livelock entry) must iterate ``order``
    rather than the ``configurations`` set: set iteration order depends
    on ``PYTHONHASHSEED``, and a witness whose identity changes between
    interpreter runs cannot be replayed bit-for-bit (lint rule R001).

    Int-keyed views (``order_ids``, ``successor_ids``, ``parent_ids``
    over ``intern`` ids) mirror the object-keyed fields for analyses
    that prefer dense bookkeeping (the valency fixpoint does). For a
    kernel-built graph, ``successor_ids`` is materialized lazily from
    the backend's flat adjacency — the BFS itself never builds
    per-configuration edge tuples.

    When the graph was built under symmetry reduction (``reduced``),
    configurations are canonical orbit representatives:
    ``source_initial`` is the concrete initial configuration the caller
    supplied, ``initial_permutation`` maps it onto ``initial``, and
    ``parent_perms`` records, per reached id, the permutation applied
    when its concrete successor was canonicalized. ``schedule_to``
    composes these permutations back out, returning a schedule that
    replays on the *unreduced* system.
    """

    __slots__ = (
        "initial",
        "complete",
        "intern",
        "order_ids",
        "parent_ids",
        "reduced",
        "source_initial",
        "initial_permutation",
        "parent_perms",
        "expansions",
        "_successor_ids",
        "_edge_resolver",
        "_adjacency",
        "_order",
        "_configurations",
        "_successors",
        "_parents",
    )

    def __init__(
        self,
        initial: Configuration,
        complete: bool = True,
        intern: Optional[PackedConfigTable] = None,
        order_ids: Optional[List[int]] = None,
        successor_ids: Optional[Dict[int, Tuple[Tuple[Edge, int], ...]]] = None,
        parent_ids: Optional[Dict[int, Tuple[int, Edge]]] = None,
        reduced: bool = False,
        source_initial: Optional[Configuration] = None,
        initial_permutation: Optional[Permutation] = None,
        parent_perms: Optional[Dict[int, Permutation]] = None,
        expansions: int = 0,
        edge_resolver: Optional[Callable[[int], Edge]] = None,
        adjacency: Optional[Callable[[int], Sequence[int]]] = None,
    ) -> None:
        self.initial = initial
        self.complete = complete
        self.intern = intern
        self.order_ids: List[int] = order_ids if order_ids is not None else []
        self.parent_ids: Dict[int, Tuple[int, Edge]] = (
            parent_ids if parent_ids is not None else {}
        )
        self.reduced = reduced
        self.source_initial = source_initial
        self.initial_permutation = initial_permutation
        self.parent_perms: Dict[int, Permutation] = (
            parent_perms if parent_perms is not None else {}
        )
        #: How many leading entries of ``order_ids`` were expanded (all
        #: of them for a complete graph; the truncation point otherwise).
        self.expansions = expansions
        # Either an explicit relation (reduced/adopted graphs) or the
        # ingredients to materialize one lazily (kernel graphs).
        self._successor_ids = successor_ids
        self._edge_resolver = edge_resolver
        self._adjacency = adjacency
        # Lazily materialized object-keyed views (see the properties
        # below): the hot path never touches them, so their cost is paid
        # only by analyses that want Configuration-keyed dictionaries.
        self._order: Optional[List[Configuration]] = None
        self._configurations: Optional[Set[Configuration]] = None
        self._successors: Optional[
            Dict[Configuration, List[Tuple[Edge, Configuration]]]
        ] = None
        self._parents: Optional[
            Dict[Configuration, Tuple[Configuration, Edge]]
        ] = None

    @property
    def successor_ids(self) -> Dict[int, Tuple[Tuple[Edge, int], ...]]:
        """id -> ((edge, successor id), ...) for every expanded id.

        Kernel-built graphs materialize this view on first access from
        the backend's flat adjacency, in expansion (= discovery) order —
        the portable rendering and every digest depend on that order.
        """
        if self._successor_ids is None:
            assert self._edge_resolver is not None
            assert self._adjacency is not None
            resolve = self._edge_resolver
            expand = self._adjacency
            table: Dict[int, Tuple[Tuple[Edge, int], ...]] = {}
            for cid in self.order_ids[: self.expansions]:
                flat = expand(cid)
                table[cid] = tuple(
                    (resolve(flat[k]), flat[k + 1])
                    for k in range(0, len(flat), 2)
                )
            self._successor_ids = table
        return self._successor_ids

    def successor_tid_rows(self) -> Dict[int, Tuple[int, ...]]:
        """id -> successor ids only — no Edge materialization.

        The decision fixpoint wants bare target ids; going through
        ``successor_ids`` would build every Edge tuple just to discard
        the edges again.
        """
        if self._successor_ids is not None:
            return {
                cid: tuple(tid for _edge, tid in entries)
                for cid, entries in self._successor_ids.items()
            }
        assert self._adjacency is not None
        expand = self._adjacency
        return {
            cid: tuple(expand(cid)[1::2])
            for cid in self.order_ids[: self.expansions]
        }

    @property
    def order(self) -> List[Configuration]:
        """BFS discovery order (deterministic; see the class docstring)."""
        if self._order is None:
            assert self.intern is not None
            value = self.intern.value
            self._order = [value(ident) for ident in self.order_ids]
        return self._order

    @property
    def configurations(self) -> Set[Configuration]:
        if self._configurations is None:
            self._configurations = set(self.order)
        return self._configurations

    @property
    def successors(
        self,
    ) -> Dict[Configuration, List[Tuple[Edge, Configuration]]]:
        if self._successors is None:
            assert self.intern is not None
            value = self.intern.value
            self._successors = {
                value(cid): [(edge, value(tid)) for edge, tid in entries]
                for cid, entries in self.successor_ids.items()
            }
        return self._successors

    @property
    def parents(self) -> Dict[Configuration, Tuple[Configuration, Edge]]:
        if self._parents is None:
            assert self.intern is not None
            value = self.intern.value
            self._parents = {
                value(tid): (value(cid), edge)
                for tid, (cid, edge) in self.parent_ids.items()
            }
        return self._parents

    def _reached_id(self, target: Configuration) -> int:
        """The intern id of ``target`` if this exploration reached it."""
        assert self.intern is not None
        tid = self.intern.get_id(target)
        if tid is not None and (
            tid == self.order_ids[0] or tid in self.parent_ids
        ):
            return tid
        raise AnalysisError("target configuration was never reached")

    def _chain_to(
        self, target: Configuration
    ) -> List[Tuple[Configuration, Edge]]:
        assert self.intern is not None
        value = self.intern.value
        cursor = self._reached_id(target)
        root = self.order_ids[0]
        chain: List[Tuple[Configuration, Edge]] = []
        while cursor != root:
            parent, edge = self.parent_ids[cursor]
            chain.append((value(cursor), edge))
            cursor = parent
        chain.reverse()
        return chain

    def schedule_to(self, target: Configuration) -> List[Edge]:
        """Reconstruct the schedule (edge sequence) reaching ``target``.

        For a reduced graph the returned edges are expressed in the
        *unreduced* system's frame: replaying them with
        :meth:`Explorer.step` from ``source_initial`` reaches a
        configuration whose canonical representative is ``target``
        (:meth:`permutation_to` returns the mapping permutation).
        """
        chain = self._chain_to(target)
        if not self.reduced:
            return [edge for _config, edge in chain]
        assert self.intern is not None
        assert self.initial_permutation is not None
        accumulated = self.initial_permutation
        edges: List[Edge] = []
        for config, edge in chain:
            inverse = _invert(accumulated)
            edges.append(Edge(inverse[edge.pid], edge.choice, edge.response))
            step_perm = self.parent_perms[self.intern.id_of(config)]
            accumulated = _compose(step_perm, accumulated)
        return edges

    def permutation_to(self, target: Configuration) -> Permutation:
        """The permutation carrying the concrete endpoint of
        :meth:`schedule_to` onto ``target`` (identity when unreduced)."""
        chain = self._chain_to(target)
        if not self.reduced:
            return tuple(range(len(target.process_states)))
        assert self.intern is not None
        assert self.initial_permutation is not None
        accumulated = self.initial_permutation
        for config, _edge in chain:
            step_perm = self.parent_perms[self.intern.id_of(config)]
            accumulated = _compose(step_perm, accumulated)
        return accumulated

    def __len__(self) -> int:
        return len(self.order_ids)

    def to_portable(self) -> Dict[str, object]:
        """A self-contained, picklable rendering of this graph.

        Intern ids are explorer-local, so the portable form re-keys
        everything by *position*: ``nodes`` lists each configuration's
        raw field triple (order first, then any extra ids a truncated
        search referenced but never visited), and edges/parents refer
        to node positions. The structure is plain tuples/lists/ints in
        BFS order — its ``repr`` is bit-stable across interpreter runs,
        which is what :func:`repro.analysis.cache.graph_digest` relies
        on. Rehydrate with :meth:`Explorer.adopt_portable`.
        """
        assert self.intern is not None
        value = self.intern.value
        positions: Dict[int, int] = {}
        node_ids: List[int] = []

        def register(cid: int) -> int:
            pos = positions.get(cid)
            if pos is None:
                pos = len(node_ids)
                positions[cid] = pos
                node_ids.append(cid)
            return pos

        for cid in self.order_ids:
            register(cid)
        order_len = len(node_ids)
        successors = []
        for cid, entries in self.successor_ids.items():
            cpos = register(cid)
            successors.append(
                (
                    cpos,
                    tuple(
                        (edge.pid, edge.choice, edge.response, register(tid))
                        for edge, tid in entries
                    ),
                )
            )
        parents = []
        for tid, (cid, edge) in self.parent_ids.items():
            parents.append(
                (
                    register(tid),
                    register(cid),
                    edge.pid,
                    edge.choice,
                    edge.response,
                )
            )
        parent_perms = [
            (register(cid), perm) for cid, perm in self.parent_perms.items()
        ]
        nodes = [
            (
                value(cid).process_states,
                value(cid).statuses,
                value(cid).object_states,
            )
            for cid in node_ids
        ]
        source_node = None
        if self.source_initial is not None:
            source_node = (
                self.source_initial.process_states,
                self.source_initial.statuses,
                self.source_initial.object_states,
            )
        return {
            "version": 1,
            "complete": self.complete,
            "nodes": nodes,
            "order_len": order_len,
            "successors": successors,
            "parents": parents,
            "reduced": self.reduced,
            "source_node": source_node,
            "initial_permutation": self.initial_permutation,
            "parent_perms": parent_perms,
        }


def _invert(perm: Permutation) -> Permutation:
    inverse = [0] * len(perm)
    for source, image in enumerate(perm):
        inverse[image] = source
    return tuple(inverse)


def _compose(outer: Permutation, inner: Permutation) -> Permutation:
    """``outer ∘ inner``: first apply ``inner``, then ``outer``."""
    return tuple(outer[image] for image in inner)


@dataclass(frozen=True)
class SafetyCounterexample:
    """A reachable configuration violating a task's safety predicate."""

    configuration: Configuration
    verdict: SafetyVerdict
    schedule: Tuple[Edge, ...]


@dataclass(frozen=True)
class Livelock:
    """A reachable cycle in which processes step without deciding.

    ``prefix`` reaches ``entry``; following ``cycle`` from ``entry``
    returns to it. ``moving`` are the pids that take steps inside the
    cycle — each takes infinitely many steps without deciding when the
    adversary loops forever.
    """

    entry: Configuration
    prefix: Tuple[Edge, ...]
    cycle: Tuple[Edge, ...]
    moving: FrozenSet[ProcessId]


class _Truncated(Exception):
    """Internal: the BFS hit its configuration budget (non-strict)."""


class Explorer:
    """Exhaustive (bounded) explorer for one protocol instance.

    ``objects`` maps names to specs; ``processes`` must be pure automata
    (``supports_snapshot``), which is what makes configurations values.

    ``kernel`` picks the exploration backend: ``"python"`` (the
    default), ``"compiled"`` (the C extension; an error if not built),
    or ``"auto"`` (compiled when available). ``None`` defers to the
    ``REPRO_KERNEL`` environment variable. Backends are byte-identical
    — same orders, ids, verdicts, digests — so the choice is purely a
    throughput knob.

    ``tables`` pre-compiles protocol semantics into flat tables ahead
    of exploration (see :mod:`repro.analysis.kernel.tables`): pass a
    :class:`ProtocolTables` compiled from the *same* ``objects`` and
    ``processes`` (caller's contract — only the process/object counts
    are checked), ``True``/``"on"`` to compile here, ``False``/``"off"``
    to stay on callbacks, or ``None`` to defer to
    ``REPRO_KERNEL_TABLES``. ``threads`` (or ``REPRO_KERNEL_THREADS``)
    partitions each BFS frontier across OS threads in the compiled
    backend. Both knobs are observable-identical on/off and for every
    thread count — throughput only.

    All caches (intern table, successor memo, decision-set table) are
    per-instance: one :class:`Explorer` = one protocol instance whose
    transition relation is immutable, so the caches can never go stale.
    """

    def __init__(
        self,
        objects: Mapping[str, SequentialSpec],
        processes: Sequence[ProcessAutomaton],
        kernel: Optional[str] = None,
        tables=None,
        threads: Optional[int] = None,
    ) -> None:
        for automaton in processes:
            if not automaton.supports_snapshot:
                raise AnalysisError(
                    f"process {automaton.pid} is generator-based and cannot "
                    f"be model-checked; use a ProcessAutomaton"
                )
        pids = [automaton.pid for automaton in processes]
        if pids != list(range(len(pids))):
            raise AnalysisError(
                f"explorer requires densely numbered pids 0..n-1, got {pids}"
            )
        self.object_names: Tuple[str, ...] = tuple(sorted(objects))
        self.specs: Tuple[SequentialSpec, ...] = tuple(
            objects[name] for name in self.object_names
        )
        self._index_of = {name: i for i, name in enumerate(self.object_names)}
        self.processes: Tuple[ProcessAutomaton, ...] = tuple(processes)
        # -- packed kernel --------------------------------------------
        #: Structural slot codes; statuses seeded so RUNNING is code 0
        #: (the kernel's "enabled" test is a zero-test on that field).
        self._encoder = PackedEncoder(
            len(self.processes),
            len(self.specs),
            seed_statuses=(RUNNING, HALTED, ABORTED),
        )
        self._backend, self.kernel = make_backend(
            kernel,
            self._encoder.n_fields,
            len(self.processes),
            self._resolve_invoke_codes,
            self._compute_delta_codes,
        )
        # -- fast-core caches ----------------------------------------
        #: Configuration <-> dense id bijection (discovery order).
        self._intern: PackedConfigTable = PackedConfigTable(
            self._encoder, self._backend
        )
        #: id -> tuple[(Edge, successor id)] — the memoized object-level
        #: relation (populated on demand; the kernel BFS bypasses it).
        self._succ_cache: Dict[int, Tuple[Tuple[Edge, int], ...]] = {}
        #: (id, pid) -> the pid's outgoing edges only (targeted step()).
        self._pid_cache: Dict[Tuple[int, ProcessId], Tuple[Tuple[Edge, int], ...]] = {}
        #: per-object (state, operation) -> outcome tuple.
        self._responses_cache: Tuple[Dict[Tuple[Hashable, Hashable], tuple], ...] = (
            tuple({} for _ in self.specs)
        )
        #: per-pid local state -> absorbed status tuple.
        self._status_cache: Tuple[Dict[Hashable, Tuple], ...] = tuple(
            {} for _ in self.processes
        )
        #: (pid, choice, response) -> the one Edge object for it.
        self._edges: Dict[Tuple[ProcessId, int, Value], Edge] = {}
        #: (pid, choice, response) -> dense edge id; edge id -> Edge.
        #: Edge ids are what the kernel's flat adjacency carries.
        self._edge_ids: Dict[Tuple[ProcessId, int, Value], int] = {}
        self._edge_list: List[Edge] = []
        #: status-code row -> (decisions, aborted, enabled) — everything
        #: a safety predicate can see, decoded once per distinct row.
        self._segment_cache: Dict[Tuple[int, ...], Tuple] = {}
        #: id -> reachable decision set (shared valency memo).
        self._decision_sets: Dict[int, FrozenSet[Value]] = {}
        # -- compiled protocol tables --------------------------------
        #: Frontier threads for the batch BFS; results are
        #: byte-identical for every count (wall-clock knob only).
        self.kernel_threads: int = select_threads(threads)
        #: The loaded ProtocolTables, or None in callback mode.
        self.kernel_tables: Optional[ProtocolTables] = None
        if isinstance(tables, ProtocolTables):
            self._load_tables(tables)
        elif select_tables(tables):
            self._load_tables(compile_tables(objects, processes))

    def _load_tables(self, tables: ProtocolTables) -> None:
        """Adopt pre-compiled protocol tables (see ``kernel.tables``).

        Replays the compiler's first-seen slot-code and edge-id
        allocation sequences into this instance's encoder and edge
        table — first-seen allocation reproduces identical codes —
        then bulk-loads the backend maps. Keys the compiler did not
        cover stay absent (the fallback sentinel) and take the
        first-miss callback path unchanged.
        """
        if tables.n_processes != len(self.processes) or tables.n_objects != len(
            self.specs
        ):
            raise AnalysisError(
                "compiled tables do not match this protocol instance: "
                f"tables are for {tables.n_processes} processes / "
                f"{tables.n_objects} objects, explorer has "
                f"{len(self.processes)} / {len(self.specs)}"
            )
        encoder = self._encoder
        for pid, allocation in enumerate(tables.local_values):
            for value in allocation:
                encoder.local_code(pid, value)
        for value in tables.status_values:
            encoder.status_code(value)
        for obj_index, allocation in enumerate(tables.object_values):
            for value in allocation:
                encoder.object_code(obj_index, value)
        for pid, choice, response in tables.edges:
            self._edge_id(pid, choice, response)
        self._backend.load_tables(tables.invoke_entries, tables.delta_entries)
        self.kernel_tables = tables

    # -- configuration construction -----------------------------------------

    def initial_configuration(self) -> Configuration:
        states = tuple(auto.initial_state() for auto in self.processes)
        statuses = tuple(RUNNING for _ in self.processes)
        objects = tuple(spec.initial_state() for spec in self.specs)
        return self._absorb(Configuration(states, statuses, objects))

    def intern_id(self, config: Configuration) -> int:
        """The configuration's dense id in this explorer's intern table."""
        return self._intern.intern(config)

    def interned(self, ident: int) -> Configuration:
        """The configuration with intern id ``ident``."""
        return self._intern.value(ident)

    def _absorb(self, config: Configuration) -> Configuration:
        """Settle local actions: decided/aborted/halted processes are
        marked immediately (decisions are not shared-memory steps)."""
        statuses = list(config.statuses)
        changed = False
        for pid in range(len(self.processes)):
            if statuses[pid] is not RUNNING:
                continue
            status = self._absorbed_status(pid, config.process_states[pid])
            if status is not RUNNING:
                statuses[pid] = status
                changed = True
        if not changed:
            return config
        return Configuration(
            config.process_states, tuple(statuses), config.object_states
        )

    def _absorbed_status(self, pid: ProcessId, state: Hashable) -> Tuple:
        """The status a running process with local ``state`` settles to:
        ``RUNNING`` while poised at an Invoke, else the terminal status
        of its pending local action. Memoized per (pid, state)."""
        cache = self._status_cache[pid]
        status = cache.get(state)
        if status is None:
            action = self.processes[pid].cached_next_action(state)
            if isinstance(action, Invoke):
                status = RUNNING
            elif isinstance(action, Decide):
                status = _decided(action.value)
            elif isinstance(action, Abort):
                status = ABORTED
            elif isinstance(action, Halt):
                status = HALTED
            else:
                # Unknown local action: leave the process running so the
                # next expansion raises the seed's "unabsorbed" error.
                status = RUNNING
            cache[state] = status
        return status

    def _outcomes(
        self, obj_index: int, obj_state: Hashable, operation: Hashable
    ) -> tuple:
        """Memoized ``spec.responses`` (pure per R004, hence cacheable)."""
        cache = self._responses_cache[obj_index]
        key = (obj_state, operation)
        try:
            return cache[key]
        except KeyError:
            outcomes = tuple(
                self.specs[obj_index].responses(obj_state, operation)
            )
            cache[key] = outcomes
            return outcomes

    # -- kernel callbacks ------------------------------------------------------
    # The backend memoizes both callbacks in flat integer tables and
    # invokes them only on the first miss per key, in deterministic
    # (pid-ascending, outcome-order) sequence — which is what makes edge
    # and configuration ids identical across backends.

    def _resolve_invoke_codes(self, pid: ProcessId, local_code: int) -> int:
        """Kernel miss hook: the object index ``pid`` invokes from the
        local state carrying ``local_code``."""
        return self._resolve_invoke(
            pid, self._encoder.local_value(pid, local_code)
        )

    def _compute_delta_codes(
        self, pid: ProcessId, local_code: int, obj_index: int, obj_code: int
    ) -> Tuple[Tuple[int, int, int, int], ...]:
        """Kernel miss hook: one ``(edge id, new local code, new status
        code, new object code)`` row per adversary choice for ``pid``
        stepping against the object state carrying ``obj_code``."""
        encoder = self._encoder
        local_state = encoder.local_value(pid, local_code)
        obj_state = encoder.object_value(obj_index, obj_code)
        automaton = self.processes[pid]
        action = automaton.cached_next_action(local_state)
        assert isinstance(action, Invoke)
        outcomes = self._outcomes(obj_index, obj_state, action.operation)
        deltas = []
        for choice, (new_obj, response) in enumerate(outcomes):
            local = automaton.cached_transition(local_state, response)
            status = self._absorbed_status(pid, local)
            deltas.append(
                (
                    self._edge_id(pid, choice, response),
                    encoder.local_code(pid, local),
                    encoder.status_code(status),
                    encoder.object_code(obj_index, new_obj),
                )
            )
        return tuple(deltas)

    def _resolve_invoke(self, pid: ProcessId, local_state: Hashable) -> int:
        """The object index ``pid`` is poised to invoke in ``local_state``
        (validating it is a well-formed Invoke on a known object)."""
        action = self.processes[pid].cached_next_action(local_state)
        if not isinstance(action, Invoke):
            raise AnalysisError(
                f"process {pid} has unabsorbed local action {action!r}"
            )
        obj_index = self._index_of.get(action.obj)
        if obj_index is None:
            raise AnalysisError(
                f"process {pid} invoked unknown object {action.obj!r}"
            )
        return obj_index

    def _edge(self, pid: ProcessId, choice: int, response: Value) -> Edge:
        """The one memoized Edge object for (pid, choice, response)."""
        key = (pid, choice, response)
        edge = self._edges.get(key)
        if edge is None:
            edge = Edge(pid, choice, response)
            self._edges[key] = edge
        return edge

    def _edge_id(self, pid: ProcessId, choice: int, response: Value) -> int:
        """The dense id of (pid, choice, response), allocating if new."""
        key = (pid, choice, response)
        eid = self._edge_ids.get(key)
        if eid is None:
            eid = len(self._edge_list)
            self._edge_ids[key] = eid
            self._edge_list.append(self._edge(pid, choice, response))
        return eid

    def _entries_from_flat(
        self, flat: Sequence[int]
    ) -> Tuple[Tuple[Edge, int], ...]:
        """Materialize a flat [eid, tid, ...] run as (Edge, id) pairs."""
        edge_list = self._edge_list
        return tuple(
            (edge_list[flat[k]], flat[k + 1]) for k in range(0, len(flat), 2)
        )

    def _successor_entries(self, cid: int) -> Tuple[Tuple[Edge, int], ...]:
        """The memoized successor relation of configuration id ``cid``."""
        entries = self._succ_cache.get(cid)
        if entries is None:
            entries = self._entries_from_flat(self._backend.expand(cid))
            self._succ_cache[cid] = entries
        return entries

    def _pid_entries(
        self, cid: int, pid: ProcessId
    ) -> Tuple[Tuple[Edge, int], ...]:
        """Only ``pid``'s outgoing edges — computed without enumerating
        the other processes' moves (reuses the full relation when the
        object memo or the kernel already expanded this id)."""
        full = self._succ_cache.get(cid)
        if full is not None:
            return tuple(entry for entry in full if entry[0].pid == pid)
        key = (cid, pid)
        entries = self._pid_cache.get(key)
        if entries is None:
            flat = self._backend.adjacency(cid)
            if flat is not None:
                edge_list = self._edge_list
                entries = tuple(
                    (edge_list[flat[k]], flat[k + 1])
                    for k in range(0, len(flat), 2)
                    if edge_list[flat[k]].pid == pid
                )
            elif self._backend.status_key(cid)[pid] != 0:
                entries = ()
            else:
                entries = self._entries_from_flat(
                    self._backend.expand_pid(cid, pid)
                )
            self._pid_cache[key] = entries
        return entries

    def successors(
        self, config: Configuration
    ) -> List[Tuple[Edge, Configuration]]:
        """All (edge, configuration) pairs one adversary step away."""
        cid = self._intern.intern(config)
        value = self._intern.value
        return [
            (edge, value(tid)) for edge, tid in self._successor_entries(cid)
        ]

    def step(
        self, config: Configuration, pid: ProcessId, choice: int = 0
    ) -> Configuration:
        """Follow one specific edge (process ``pid``, outcome ``choice``).

        Computes only the requested process's outcomes — it does not
        enumerate the other processes' moves.
        """
        cid = self._intern.intern(config)
        for edge, tid in self._pid_entries(cid, pid):
            if edge.choice == choice:
                return self._intern.value(tid)
        raise AnalysisError(
            f"no successor for pid={pid} choice={choice} from this "
            f"configuration (enabled: {config.enabled()})"
        )

    # -- graph exploration ---------------------------------------------------

    def explore(
        self,
        initial: Optional[Configuration] = None,
        max_configurations: int = 200_000,
        strict: bool = False,
        symmetry: Optional["ProcessSymmetry"] = None,
    ) -> ExplorationResult:
        """BFS the reachable configuration graph from ``initial``.

        Stops at ``max_configurations`` (marking the result incomplete,
        or raising in ``strict`` mode). With ``symmetry``, explores the
        quotient graph of canonical representatives instead — see
        :mod:`repro.analysis.symmetry` for the soundness conditions —
        and records the permutations needed to map witnesses back.

        The unreduced walk is one batch call into the kernel backend:
        the whole frontier is expanded over packed ids and no
        ``Configuration`` object is built until a result view asks for
        one.
        """
        start = initial if initial is not None else self.initial_configuration()
        start = self._intern.canonical(start)
        if symmetry is not None:
            return self._explore_reduced(
                start, max_configurations, strict, symmetry
            )

        intern = self._intern
        start_id = intern.id_of(start)

        # Observability: counts accumulate in the kernel and publish
        # once at the end; per-level trace events are delivered through
        # the round hook only when a trace session is active.
        intern_before = len(intern)
        on_round = None
        if obs.tracing():

            def on_round(depth: int, width: int, seen: int) -> None:
                obs.event(
                    "explorer.frontier", depth=depth, width=width, seen=seen
                )

        order_ids, parent_triples, complete, expansions, rounds = (
            self._backend.run_bfs(
                start_id, max_configurations, on_round, self.kernel_threads
            )
        )
        if strict and not complete:
            raise ExplorationBudgetExceeded(
                f"exceeded {max_configurations} configurations"
            )

        edge_list = self._edge_list
        triples = iter(parent_triples)
        parent_ids: Dict[int, Tuple[int, Edge]] = {
            tid: (cid, edge_list[eid])
            for tid, cid, eid in zip(triples, triples, triples)
        }

        if obs.enabled():
            obs.counter("explorer.explorations")
            obs.counter("explorer.configurations", len(order_ids))
            obs.counter("explorer.expansions", expansions)
            obs.counter("explorer.interned", len(intern) - intern_before)
            obs.histogram("explorer.depth", rounds)
            if not complete:
                obs.counter("explorer.truncations")

        return ExplorationResult(
            initial=start,
            complete=complete,
            intern=intern,
            order_ids=list(order_ids),
            parent_ids=parent_ids,
            source_initial=start,
            expansions=expansions,
            edge_resolver=edge_list.__getitem__,
            adjacency=self._backend.expand,
        )

    def _explore_reduced(
        self,
        start: Configuration,
        max_configurations: int,
        strict: bool,
        symmetry: "ProcessSymmetry",
    ) -> ExplorationResult:
        """The symmetry-reduced walk (object-level: canonicalization
        permutes whole configurations, which quotient graphs are small
        enough to afford)."""
        rep, initial_perm = self._canonicalize(start, symmetry)
        bfs_start = rep

        intern = self._intern
        start_id = intern.id_of(bfs_start)
        order_ids: List[int] = [start_id]
        seen: Set[int] = {start_id}
        parent_ids: Dict[int, Tuple[int, Edge]] = {}
        parent_perms: Dict[int, Permutation] = {}
        successor_ids: Dict[int, Tuple[Tuple[Edge, int], ...]] = {}
        complete = True

        trace_on = obs.tracing()
        intern_before = len(intern)
        expansions = 0
        symmetry_hits = 0
        depth = 0

        frontier: List[int] = [start_id]
        try:
            while frontier:
                if trace_on:
                    obs.event(
                        "explorer.frontier",
                        depth=depth,
                        width=len(frontier),
                        seen=len(seen),
                    )
                next_frontier: List[int] = []
                for cid in frontier:
                    expansions += 1
                    entries = self._successor_entries(cid)
                    # The quotient graph's edges must target the
                    # canonical representatives, so every id in
                    # successor_ids stays inside order_ids and
                    # graph-level passes (decision fixpoint, livelock
                    # DFS) work unchanged on reduced results.
                    mapped: List[Tuple[Edge, int]] = []
                    perm_list: List[Permutation] = []
                    for edge, tid in entries:
                        crep, perm = self._canonicalize(
                            intern.value(tid), symmetry
                        )
                        rep_id = intern.id_of(crep)
                        if rep_id != tid:
                            symmetry_hits += 1
                        mapped.append((edge, rep_id))
                        perm_list.append(perm)
                    entries = tuple(mapped)
                    perms = tuple(perm_list)
                    successor_ids[cid] = entries
                    for index, (edge, tid) in enumerate(entries):
                        if tid in seen:
                            continue
                        if len(seen) >= max_configurations:
                            if strict:
                                raise ExplorationBudgetExceeded(
                                    f"exceeded {max_configurations} "
                                    f"configurations"
                                )
                            complete = False
                            raise _Truncated()
                        seen.add(tid)
                        order_ids.append(tid)
                        parent_ids[tid] = (cid, edge)
                        parent_perms[tid] = perms[index]
                        next_frontier.append(tid)
                frontier = next_frontier
                depth += 1
        except _Truncated:
            pass

        if obs.enabled():
            obs.counter("explorer.explorations")
            obs.counter("explorer.configurations", len(order_ids))
            obs.counter("explorer.expansions", expansions)
            obs.counter("explorer.interned", len(intern) - intern_before)
            obs.histogram("explorer.depth", depth)
            obs.counter("explorer.symmetry_hits", symmetry_hits)
            if not complete:
                obs.counter("explorer.truncations")

        return ExplorationResult(
            initial=bfs_start,
            complete=complete,
            intern=intern,
            order_ids=order_ids,
            successor_ids=successor_ids,
            parent_ids=parent_ids,
            reduced=True,
            source_initial=start,
            initial_permutation=initial_perm,
            parent_perms=parent_perms,
            expansions=expansions,
        )

    def adopt_portable(
        self, portable: Mapping[str, object]
    ) -> ExplorationResult:
        """Rehydrate a :meth:`ExplorationResult.to_portable` graph.

        Every configuration is re-interned into *this* explorer (ids
        are re-allocated; positions in the portable form map onto the
        local intern table), statuses are re-canonicalized onto the
        module singletons (``RUNNING``/``HALTED``/``ABORTED`` are
        compared by identity throughout the calculus), and — for
        unreduced graphs — the successor relation is installed into the
        memo, so every downstream analysis (``schedule_to``, the
        decision fixpoint, livelock DFS, ``step``) runs on the cached
        graph without re-deriving a single edge.
        """
        nodes = portable["nodes"]
        new_ids: List[int] = []
        intern = self._intern
        for states, statuses, objects in nodes:  # type: ignore[union-attr]
            canonical_statuses = tuple(
                _STATUS_SINGLETONS.get(status, status) for status in statuses
            )
            config = Configuration(
                tuple(states), canonical_statuses, tuple(objects)
            )
            new_ids.append(intern.intern(config))
        successor_ids: Dict[int, Tuple[Tuple[Edge, int], ...]] = {}
        for cpos, entries in portable["successors"]:  # type: ignore[union-attr]
            cid = new_ids[cpos]
            mapped = tuple(
                (self._edge(pid, choice, response), new_ids[tpos])
                for pid, choice, response, tpos in entries
            )
            successor_ids[cid] = mapped
        reduced = bool(portable["reduced"])
        if not reduced:
            # A reduced graph's edges target orbit representatives, not
            # raw successors — only unreduced relations may seed the
            # successor memo.
            for cid, mapped in successor_ids.items():
                self._succ_cache.setdefault(cid, mapped)
        parent_ids: Dict[int, Tuple[int, Edge]] = {}
        for tpos, ppos, pid, choice, response in portable["parents"]:  # type: ignore[union-attr]
            parent_ids[new_ids[tpos]] = (
                new_ids[ppos],
                self._edge(pid, choice, response),
            )
        order_ids = new_ids[: portable["order_len"]]  # type: ignore[index]
        initial = intern.value(order_ids[0])
        source_initial = initial
        source_node = portable["source_node"]
        if source_node is not None:
            states, statuses, objects = source_node  # type: ignore[misc]
            canonical_statuses = tuple(
                _STATUS_SINGLETONS.get(status, status) for status in statuses
            )
            source_initial = intern.canonical(
                Configuration(tuple(states), canonical_statuses, tuple(objects))
            )
        parent_perms = {
            new_ids[pos]: tuple(perm)
            for pos, perm in portable["parent_perms"]  # type: ignore[union-attr]
        }
        initial_permutation = portable["initial_permutation"]
        return ExplorationResult(
            initial=initial,
            complete=bool(portable["complete"]),
            intern=intern,
            order_ids=list(order_ids),
            successor_ids=successor_ids,
            parent_ids=parent_ids,
            reduced=reduced,
            source_initial=source_initial,
            initial_permutation=(
                tuple(initial_permutation)
                if initial_permutation is not None
                else None
            ),
            parent_perms=parent_perms,
            expansions=len(successor_ids),
        )

    def _canonicalize(
        self, config: Configuration, symmetry: "ProcessSymmetry"
    ) -> Tuple[Configuration, Permutation]:
        """Orbit representative of ``config`` (interned) plus the
        permutation mapping ``config`` onto it."""
        rep, perm = symmetry.canonical(config, self.object_names)
        return self._intern.canonical(rep), perm

    # -- status segments -------------------------------------------------------

    def _segment_info(
        self, key: Tuple[int, ...]
    ) -> Tuple[Dict[ProcessId, Value], Tuple[ProcessId, ...], Tuple[ProcessId, ...]]:
        """(decisions, aborted, enabled) of a packed status row.

        Everything a safety predicate or valency seed can observe is a
        function of the status fields alone, so configurations sharing
        a status row share this decoding — one dict per distinct row
        instead of one per configuration.
        """
        info = self._segment_cache.get(key)
        if info is None:
            status_value = self._encoder.status_value
            decisions: Dict[ProcessId, Value] = {}
            aborted: List[ProcessId] = []
            enabled: List[ProcessId] = []
            for pid, code in enumerate(key):
                status = status_value(code)
                if status is RUNNING:
                    enabled.append(pid)
                elif status is ABORTED:
                    aborted.append(pid)
                elif status[0] == "decided":
                    decisions[pid] = status[1]
            info = (decisions, tuple(aborted), tuple(enabled))
            self._segment_cache[key] = info
        return info

    # -- analyses ------------------------------------------------------------

    def check_safety(
        self,
        task: DecisionTask,
        inputs: Sequence[Value],
        initial: Optional[Configuration] = None,
        max_configurations: int = 200_000,
        symmetry: Optional["ProcessSymmetry"] = None,
    ) -> Optional[SafetyCounterexample]:
        """Audit safety at every reachable configuration.

        Returns a counterexample (with its witness schedule) or None. A
        None from an incomplete exploration raises — absence of evidence
        under a truncated search is not evidence.

        With ``symmetry``, the quotient graph is audited instead; the
        task predicate must be invariant under the supplied symmetry
        (checked dynamically: the witness is replayed concretely and
        must still violate). The returned counterexample is always
        concrete and replayable on the unreduced system.
        """
        exploration = self.explore(initial, max_configurations, symmetry=symmetry)
        if symmetry is not None:
            # BFS order, not set order: the returned counterexample must
            # be the same one on every run regardless of PYTHONHASHSEED.
            for config in exploration.order:
                verdict = task.check_safety(
                    inputs, config.decisions(), config.aborted()
                )
                if not verdict.ok:
                    schedule = tuple(exploration.schedule_to(config))
                    assert exploration.source_initial is not None
                    cursor = exploration.source_initial
                    for edge in schedule:
                        cursor = self.step(cursor, edge.pid, edge.choice)
                    concrete = task.check_safety(
                        inputs, cursor.decisions(), cursor.aborted()
                    )
                    if concrete.ok:
                        raise AnalysisError(
                            "symmetry reduction is unsound for this task: the "
                            "canonical representative violates safety but its "
                            "concrete preimage does not — the task predicate "
                            "is not invariant under the supplied symmetry"
                        )
                    return SafetyCounterexample(
                        configuration=cursor,
                        verdict=concrete,
                        schedule=schedule,
                    )
        else:
            # Packed walk: the predicate only sees (decisions, aborted),
            # a function of the status row — audit each distinct row
            # once and scan ids in BFS order (R001: same counterexample
            # on every run). No Configuration is materialized unless a
            # violation is actually reported.
            backend = self._backend
            status_key = backend.status_key
            verdicts: Dict[Tuple[int, ...], SafetyVerdict] = {}
            for cid in exploration.order_ids:
                key = status_key(cid)
                verdict = verdicts.get(key)
                if verdict is None:
                    decisions, aborted, _enabled = self._segment_info(key)
                    verdict = task.check_safety(inputs, decisions, aborted)
                    verdicts[key] = verdict
                if not verdict.ok:
                    config = self._intern.value(cid)
                    schedule = tuple(exploration.schedule_to(config))
                    return SafetyCounterexample(
                        configuration=config,
                        verdict=verdict,
                        schedule=schedule,
                    )
        if not exploration.complete:
            raise ExplorationBudgetExceeded(
                "no violation found, but the exploration was truncated; "
                "raise max_configurations"
            )
        return None

    def decision_table(
        self,
        initial: Optional[Configuration] = None,
        max_configurations: int = 200_000,
        exploration: Optional[ExplorationResult] = None,
    ) -> Dict[int, FrozenSet[Value]]:
        """Reachable decision sets for every configuration reachable
        from ``initial``, by one backward fixpoint over the memoized
        graph (keys are intern ids; the table is shared and reused by
        every later valency query on this explorer).

        Pass ``exploration`` to reuse an already-computed graph (the
        :class:`~repro.analysis.valency_analyzer.ValencyAnalyzer` does)
        instead of re-walking the BFS.
        """
        if exploration is not None:
            if exploration.order_ids[0] not in self._decision_sets:
                self._run_decision_fixpoint(exploration)
            return self._decision_sets
        start = initial if initial is not None else self.initial_configuration()
        start = self._intern.canonical(start)
        start_id = self._intern.id_of(start)
        if start_id not in self._decision_sets:
            self._populate_decision_sets(start, max_configurations)
        return self._decision_sets

    def _populate_decision_sets(
        self, start: Configuration, max_configurations: int
    ) -> None:
        exploration = self.explore(start, max_configurations)
        if not exploration.complete:
            raise ExplorationBudgetExceeded(
                "decision_values needs a complete subgraph; raise the budget"
            )
        self._run_decision_fixpoint(exploration)

    def _run_decision_fixpoint(self, exploration: ExplorationResult) -> None:
        order_ids = exploration.order_ids
        successor_rows = exploration.successor_tid_rows()
        known = self._decision_sets
        status_key = self._backend.status_key
        sets: Dict[int, Set[Value]] = {}
        for cid in order_ids:
            fixed = known.get(cid)
            if fixed is not None:
                sets[cid] = set(fixed)
            else:
                decisions, _aborted, _enabled = self._segment_info(
                    status_key(cid)
                )
                sets[cid] = set(decisions.values())
        # Backward fixpoint: reverse-BFS order settles acyclic parts in
        # one sweep; cycles converge because the sets are monotone.
        changed = True
        while changed:
            changed = False
            for cid in reversed(order_ids):
                merged = sets[cid]
                before = len(merged)
                for tid in successor_rows.get(cid, ()):
                    merged |= sets[tid]
                if len(merged) != before:
                    changed = True
        for cid, values in sets.items():
            known[cid] = frozenset(values)

    def decision_values(
        self,
        config: Configuration,
        pid: Optional[ProcessId] = None,
        max_configurations: int = 200_000,
    ) -> FrozenSet[Value]:
        """All values decided anywhere in the subgraph reachable from
        ``config`` (restricted to ``pid``'s decisions if given).

        This is the semantic core of valency: a configuration is
        v-valent iff ``decision_values`` is a subset of ``{v}``. The
        unrestricted form is answered from the shared memoized
        decision-set table (one backward fixpoint per new subgraph,
        never one exploration per query).
        """
        if pid is None:
            table = self.decision_table(config, max_configurations)
            return table[self._intern.id_of(self._intern.canonical(config))]
        exploration = self.explore(config, max_configurations)
        if not exploration.complete:
            raise ExplorationBudgetExceeded(
                "decision_values needs a complete subgraph; raise the budget"
            )
        status_key = self._backend.status_key
        values: Set[Value] = set()
        for cid in exploration.order_ids:
            decisions, _aborted, _enabled = self._segment_info(status_key(cid))
            if pid in decisions:
                values.add(decisions[pid])
        return frozenset(values)

    def find_livelock(
        self,
        initial: Optional[Configuration] = None,
        max_configurations: int = 200_000,
        require_undecided_mover: bool = True,
    ) -> Optional[Livelock]:
        """Find a reachable cycle — an adversarial infinite run.

        With ``require_undecided_mover`` (default) the cycle must move
        at least one process that never decides inside it, i.e. a
        genuine liveness violation witness ("takes infinitely many steps
        without deciding").
        """
        exploration = self.explore(initial, max_configurations)
        if not exploration.complete:
            raise ExplorationBudgetExceeded(
                "livelock search needs a complete graph; raise the budget"
            )
        # Iterative DFS with colors to find a back edge — int-keyed on
        # intern ids (the traversal order matches the seed calculus
        # exactly, so the reported livelock is bit-identical).
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[int, int] = {cid: WHITE for cid in exploration.order_ids}
        on_path: List[Tuple[int, Edge]] = []
        successor_ids = exploration.successor_ids
        value = self._intern.value
        start_id = exploration.order_ids[0]

        stack: List[Tuple[int, int]] = [(start_id, 0)]
        color[start_id] = GRAY
        while stack:
            cid, edge_index = stack[-1]
            edges = successor_ids.get(cid, ())
            if edge_index >= len(edges):
                color[cid] = BLACK
                stack.pop()
                if on_path:
                    on_path.pop()
                continue
            stack[-1] = (cid, edge_index + 1)
            edge, tid = edges[edge_index]
            if color.get(tid, WHITE) == GRAY:
                # Back edge: cycle tid -> ... -> cid -> tid.
                cycle_edges: List[Edge] = []
                collecting = False
                for path_id, path_edge in on_path:
                    if path_id == tid:
                        collecting = True
                    if collecting:
                        cycle_edges.append(path_edge)
                cycle_edges.append(edge)
                moving = frozenset(e.pid for e in cycle_edges)
                entry = value(tid)
                undecided = {
                    pid
                    for pid in sorted(moving)
                    if entry.statuses[pid] is RUNNING
                }
                if not require_undecided_mover or undecided:
                    return Livelock(
                        entry=entry,
                        prefix=tuple(exploration.schedule_to(entry)),
                        cycle=tuple(cycle_edges),
                        moving=moving,
                    )
                continue
            if color.get(tid, WHITE) == WHITE:
                color[tid] = GRAY
                on_path.append((cid, edge))
                stack.append((tid, 0))
        return None

    def solo_termination(
        self,
        pid: ProcessId,
        initial: Optional[Configuration] = None,
        max_configurations: int = 50_000,
    ) -> bool:
        """Does ``pid`` decide (or abort) in *every* solo run from here?

        Explores the subgraph where only ``pid`` moves; True iff every
        maximal solo path ends with ``pid`` terminated and the subgraph
        is acyclic (a solo cycle = a solo run that never decides). This
        is n-DAC Termination (a)/(b) and the "q-solo history" device the
        proofs invoke constantly.

        The walk is an iterative worklist (no recursion): deep solo
        chains — hundreds of retry steps in the starvation experiments —
        must not hit Python's recursion limit. Successor statuses are
        read straight off the packed rows; no configuration is
        materialized anywhere in the walk.
        """
        start = initial if initial is not None else self.initial_configuration()
        start = self._intern.canonical(start)
        if start.statuses[pid] is not RUNNING:
            return True
        status_key = self._backend.status_key
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[int, int] = {}
        expanded = 0
        start_id = self._intern.id_of(start)
        color[start_id] = GRAY
        # Frame: [config id, edge tuple or None, next edge index].
        stack: List[List] = [[start_id, None, 0]]
        while stack:
            frame = stack[-1]
            cid = frame[0]
            if frame[1] is None:
                if expanded >= max_configurations:
                    raise ExplorationBudgetExceeded(
                        "solo_termination budget exceeded"
                    )
                expanded += 1
                frame[1] = self._pid_entries(cid, pid)
                if not frame[1]:
                    # pid is enabled but has no successor — cannot happen
                    # for total objects; treat as non-termination.
                    return False
            if frame[2] >= len(frame[1]):
                color[cid] = BLACK
                stack.pop()
                continue
            _edge, tid = frame[1][frame[2]]
            frame[2] += 1
            if status_key(tid)[pid] != 0:
                continue  # this solo path terminated
            mark = color.get(tid, WHITE)
            if mark == GRAY:
                return False  # solo cycle: pid steps forever undecided
            if mark == BLACK:
                continue
            color[tid] = GRAY
            stack.append([tid, None, 0])
        return True
