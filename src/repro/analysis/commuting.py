"""Commuting lemmas, mechanized.

The bivalency case analyses repeatedly use two structural facts:

* **disjoint-access commutativity** (Claim 4.2.7, Case 1): steps of two
  different processes on *different* objects commute — performing them
  in either order yields the same configuration;
* **read transparency** (Claim 4.2.8, Case 1): a read step does not
  change the register, so the other process's step applies identically
  after it; the two orders differ only in the reader's local state.

These are lemmas about the *model*, so they are checkable over entire
reachable graphs: :func:`verify_disjoint_commutativity` scans every
reachable configuration of a protocol instance and checks every
disjoint pair of enabled steps; :func:`verify_read_transparency` does
the same for read steps on registers. The experiments run these scans
over the paper's systems (Algorithm 2, the consensus protocols) —
turning "it is easy to see that the steps commute" into a regression
test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..objects.register import RegisterSpec
from ..runtime.events import Invoke
from ..types import ProcessId
from .explorer import Configuration, Explorer


@dataclass(frozen=True)
class CommutingViolation:
    """A pair of steps that failed to commute (should be impossible)."""

    configuration: Configuration
    first_pid: ProcessId
    second_pid: ProcessId
    detail: str


def _poised_invoke(explorer: Explorer, config: Configuration, pid: ProcessId):
    action = explorer.processes[pid].next_action(config.process_states[pid])
    return action if isinstance(action, Invoke) else None


def check_pair_commutes(
    explorer: Explorer,
    config: Configuration,
    first: ProcessId,
    second: ProcessId,
) -> Optional[CommutingViolation]:
    """Check e_first e_second (C) == e_second e_first (C).

    Only meaningful for deterministic steps; when either process's step
    branches (a nondeterministic object), each (choice₁, choice₂) pair
    is compared — the *sets* of outcome configurations must coincide.
    """
    first_order = set()
    for edge_a, config_a in explorer.successors(config):
        if edge_a.pid != first:
            continue
        for edge_b, config_ab in explorer.successors(config_a):
            if edge_b.pid == second:
                first_order.add(config_ab)
    second_order = set()
    for edge_b, config_b in explorer.successors(config):
        if edge_b.pid != second:
            continue
        for edge_a, config_ba in explorer.successors(config_b):
            if edge_a.pid == first:
                second_order.add(config_ba)
    if first_order != second_order:
        return CommutingViolation(
            configuration=config,
            first_pid=first,
            second_pid=second,
            detail=(
                f"{len(first_order)} outcome(s) one way vs "
                f"{len(second_order)} the other, or differing configurations"
            ),
        )
    return None


def verify_disjoint_commutativity(
    explorer: Explorer,
    max_configurations: int = 50_000,
) -> Tuple[int, List[CommutingViolation]]:
    """Scan the reachable graph; check every disjoint-object step pair.

    Returns (pairs checked, violations) — violations should always be
    empty; a non-empty list means the model itself is broken.
    """
    graph = explorer.explore(max_configurations=max_configurations)
    checked = 0
    violations: List[CommutingViolation] = []
    for config in graph.order:
        enabled = config.enabled()
        for index, first in enumerate(enabled):
            invoke_first = _poised_invoke(explorer, config, first)
            if invoke_first is None:
                continue
            for second in enabled[index + 1 :]:
                invoke_second = _poised_invoke(explorer, config, second)
                if invoke_second is None:
                    continue
                if invoke_first.obj == invoke_second.obj:
                    continue  # same object: no commuting claim
                checked += 1
                violation = check_pair_commutes(explorer, config, first, second)
                if violation is not None:
                    violations.append(violation)
    return checked, violations


def verify_read_transparency(
    explorer: Explorer,
    max_configurations: int = 50_000,
) -> Tuple[int, List[CommutingViolation]]:
    """Claim 4.2.8 Case 1's engine: a register read leaves the register
    unchanged, so for a reader p and any q poised at the *same*
    register, e_p e_q(C) and e_q ... differ only in p's local state —
    we verify the checkable core: p's read step never changes any
    object state.
    """
    graph = explorer.explore(max_configurations=max_configurations)
    register_names = {
        name
        for name, spec in zip(explorer.object_names, explorer.specs)
        if isinstance(spec, RegisterSpec)
    }
    checked = 0
    violations: List[CommutingViolation] = []
    for config in graph.order:
        for pid in config.enabled():
            invoke = _poised_invoke(explorer, config, pid)
            if (
                invoke is None
                or invoke.obj not in register_names
                or invoke.operation.name != "read"
            ):
                continue
            checked += 1
            for edge, successor in explorer.successors(config):
                if edge.pid != pid:
                    continue
                if successor.object_states != config.object_states:
                    violations.append(
                        CommutingViolation(
                            configuration=config,
                            first_pid=pid,
                            second_pid=pid,
                            detail="a read step changed object state",
                        )
                    )
    return checked, violations
