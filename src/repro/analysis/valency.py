"""Valency analysis: the FLP/bivalency machinery, computed.

The paper's impossibility proofs (Theorems 4.2 and 5.2) are bivalency
arguments [8]: classify configurations by which values remain
decidable, show the initial configuration is bivalent, descend to a
*critical* configuration (bivalent, but every step lands univalent),
and derive a contradiction from the object at the critical step.

For concrete protocol instances all of this is computable, and this
module computes it:

* :func:`classify` — the valence of a configuration
  (:data:`ZERO_VALENT` / :data:`ONE_VALENT` / :data:`BIVALENT` /
  :data:`DECISIONLESS`);
* :func:`initial_valency_report` — Claim 4.2.4 / 5.2.1 style: which
  input assignments give bivalent initial configurations;
* :func:`find_critical_configuration` — Claim 4.2.5 / 5.2.2 style
  descent to a critical configuration, returning the witness schedule
  and the per-successor valences;
* :func:`contended_object` — Claim 5.2.3 style: at a critical
  configuration, which object is everyone poised to access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError
from ..runtime.events import Invoke
from ..types import ProcessId, Value
from .explorer import Configuration, Edge, Explorer

#: Valence labels.
ZERO_VALENT = "0-valent"
ONE_VALENT = "1-valent"
BIVALENT = "bivalent"
DECISIONLESS = "decisionless"  # no decision reachable at all (livelock-only)


@dataclass(frozen=True)
class Valency:
    """The decision values reachable from a configuration, classified.

    ``values`` is the full reachable decision set; ``label`` classifies
    it against the binary domain ``domain`` (default ``{0, 1}``).
    """

    values: FrozenSet[Value]
    label: str

    @property
    def bivalent(self) -> bool:
        return self.label == BIVALENT

    @property
    def univalent(self) -> bool:
        return self.label in (ZERO_VALENT, ONE_VALENT)


def classify(
    explorer: Explorer,
    config: Configuration,
    domain: Tuple[Value, Value] = (0, 1),
    max_configurations: int = 200_000,
) -> Valency:
    """Compute and classify the reachable decision set of ``config``."""
    values = explorer.decision_values(config, max_configurations=max_configurations)
    zero, one = domain
    has_zero = zero in values
    has_one = one in values
    if has_zero and has_one:
        label = BIVALENT
    elif has_zero:
        label = ZERO_VALENT
    elif has_one:
        label = ONE_VALENT
    else:
        label = DECISIONLESS
    return Valency(values=values, label=label)


@dataclass(frozen=True)
class InitialValencyReport:
    """Valences of the initial configurations over input assignments."""

    entries: Tuple[Tuple[Tuple[Value, ...], str], ...]

    def bivalent_inputs(self) -> List[Tuple[Value, ...]]:
        return [inputs for inputs, label in self.entries if label == BIVALENT]

    def label_of(self, inputs: Tuple[Value, ...]) -> str:
        for assignment, label in self.entries:
            if assignment == inputs:
                return label
        raise AnalysisError(f"inputs {inputs} were not analyzed")


def initial_valency_report(
    make_explorer,
    input_assignments: Sequence[Tuple[Value, ...]],
    domain: Tuple[Value, Value] = (0, 1),
    max_configurations: int = 200_000,
) -> InitialValencyReport:
    """Classify the initial configuration for each input assignment.

    ``make_explorer(inputs)`` must build a fresh :class:`Explorer` for
    an input assignment (protocol automata embed their inputs, so each
    assignment is a different system). This reproduces the shape of
    Claim 4.2.4 ("I is bivalent") and Claim 5.2.1 ("the algorithm has a
    bivalent initial configuration").
    """
    entries: List[Tuple[Tuple[Value, ...], str]] = []
    for inputs in input_assignments:
        explorer = make_explorer(tuple(inputs))
        valency = classify(
            explorer,
            explorer.initial_configuration(),
            domain,
            max_configurations,
        )
        entries.append((tuple(inputs), valency.label))
    return InitialValencyReport(entries=tuple(entries))


@dataclass(frozen=True)
class CriticalConfiguration:
    """A bivalent configuration whose every successor is univalent.

    ``schedule`` reaches it from the initial configuration;
    ``successor_valences`` maps each outgoing edge to the successor's
    valence label; ``poised_objects`` maps each enabled pid to the
    object it is about to access.
    """

    configuration: Configuration
    schedule: Tuple[Edge, ...]
    successor_valences: Tuple[Tuple[Edge, str], ...]
    poised_objects: Tuple[Tuple[ProcessId, str], ...]


def find_critical_configuration(
    explorer: Explorer,
    initial: Optional[Configuration] = None,
    domain: Tuple[Value, Value] = (0, 1),
    max_configurations: int = 200_000,
) -> Optional[CriticalConfiguration]:
    """Descend from a bivalent configuration to a critical one.

    Standard FLP descent: while some successor is bivalent, move to it;
    cycles are avoided by tracking visited configurations (if every
    bivalent successor was already visited, the protocol has a bivalent
    cycle and the adversary never needs to leave it — we then report
    None, since no critical configuration is reachable along this
    greedy path; the *livelock itself* is the impossibility witness in
    that case, see :meth:`Explorer.find_livelock`).

    Returns None when the initial configuration is not bivalent.

    Cost: one exploration + one backward fixpoint total. The first
    :func:`classify` populates the explorer's shared decision-set table
    for the whole reachable subgraph, so every per-successor
    classification during the descent is a table lookup — not a fresh
    exploration per successor per step.
    """
    config = initial if initial is not None else explorer.initial_configuration()
    valency = classify(explorer, config, domain, max_configurations)
    if not valency.bivalent:
        return None

    schedule: List[Edge] = []
    visited: Set[Configuration] = {config}
    while True:
        edges = explorer.successors(config)
        labelled: List[Tuple[Edge, Configuration, str]] = []
        for edge, successor in edges:
            label = classify(
                explorer, successor, domain, max_configurations
            ).label
            labelled.append((edge, successor, label))
        bivalent_moves = [
            (edge, successor)
            for edge, successor, label in labelled
            if label == BIVALENT
        ]
        if not bivalent_moves:
            poised = _poised_objects(explorer, config)
            return CriticalConfiguration(
                configuration=config,
                schedule=tuple(schedule),
                successor_valences=tuple(
                    (edge, label) for edge, _successor, label in labelled
                ),
                poised_objects=tuple(sorted(poised.items())),
            )
        progressed = False
        for edge, successor in bivalent_moves:
            if successor not in visited:
                visited.add(successor)
                schedule.append(edge)
                config = successor
                progressed = True
                break
        if not progressed:
            # Every bivalent successor is already on the visited set:
            # the bivalence lives on a cycle.
            return None


def _poised_objects(
    explorer: Explorer, config: Configuration
) -> Dict[ProcessId, str]:
    """Which object is each enabled process about to access?

    This is the Claim 5.2.3 observation: at a critical configuration
    every process is poised at the *same* object (otherwise steps on
    different objects would commute, contradicting criticality).
    """
    poised: Dict[ProcessId, str] = {}
    for pid in config.enabled():
        action = explorer.processes[pid].cached_next_action(
            config.process_states[pid]
        )
        if isinstance(action, Invoke):
            poised[pid] = action.obj
    return poised


def contended_object(critical: CriticalConfiguration) -> Optional[str]:
    """The single object all poised processes target, or None.

    For protocols matching the paper's hypotheses this is never None at
    a critical configuration (Claim 5.2.3); candidate protocols that
    *do* return a single name here let the experiments identify which
    object kind absorbs the contention — the paper's case analysis then
    says that kind must be neither register, nor m-consensus, nor
    2-SA/PAC, which is the contradiction.
    """
    names = {name for _pid, name in critical.poised_objects}
    if len(names) == 1:
        return next(iter(names))
    return None
