"""Verification machinery: model checking, valency, linearizability.

* :mod:`repro.analysis.explorer` — bounded exhaustive exploration of
  configuration graphs (safety counterexamples, livelocks, solo runs);
* :mod:`repro.analysis.valency` — the FLP/bivalency calculus, computed;
* :mod:`repro.analysis.linearizability` — Wing–Gong linearizability
  checking against any sequential spec;
* :mod:`repro.analysis.properties` — per-run auditors for simulations;
* :mod:`repro.analysis.intern` / :mod:`repro.analysis.symmetry` — the
  fast-core substrate: dense configuration interning and opt-in
  symmetry reduction (see ``docs/performance.md``);
* :mod:`repro.analysis.parallel` / :mod:`repro.analysis.cache` — the
  scale-out substrate: a crash-isolated multiprocessing work pool with
  deterministic result merging, and a persistent content-addressed
  store for exploration graphs and suite verdicts.
"""

from .commuting import (
    CommutingViolation,
    check_pair_commutes,
    verify_disjoint_commutativity,
    verify_read_transparency,
)
from .explorer import (
    Configuration,
    Edge,
    ExplorationResult,
    Explorer,
    Livelock,
    SafetyCounterexample,
)
from .intern import InternTable
from .cache import (
    CacheIntegrityError,
    CacheStats,
    ExplorationCache,
    code_salt,
    explore_cached,
    fingerprint,
    graph_digest,
)
from .parallel import (
    VerificationPool,
    WorkFailure,
    WorkItem,
    WorkResult,
    run_work_items,
)
from .symmetry import ProcessSymmetry, groups_by_input
from .linearizability import (
    LinearizabilityChecker,
    LinearizabilityVerdict,
    check_linearizable,
)
from .replay import (
    ReplayReport,
    oracle_script,
    replay_counterexample,
    verify_replay,
)
from .suite import PhaseOutcome, SuiteVerdict, verify_task_protocol
from .properties import (
    RunAudit,
    WaitFreedomAudit,
    audit_dac_run,
    audit_task_run,
    audit_wait_freedom,
)
from .valency_analyzer import CriticalReport, HookStep, ValencyAnalyzer
from .valency import (
    BIVALENT,
    CriticalConfiguration,
    DECISIONLESS,
    InitialValencyReport,
    ONE_VALENT,
    Valency,
    ZERO_VALENT,
    classify,
    contended_object,
    find_critical_configuration,
    initial_valency_report,
)

__all__ = [
    "BIVALENT",
    "CacheIntegrityError",
    "CacheStats",
    "CommutingViolation",
    "Configuration",
    "ExplorationCache",
    "VerificationPool",
    "WorkFailure",
    "WorkItem",
    "WorkResult",
    "code_salt",
    "explore_cached",
    "fingerprint",
    "graph_digest",
    "run_work_items",
    "CriticalConfiguration",
    "CriticalReport",
    "HookStep",
    "ValencyAnalyzer",
    "DECISIONLESS",
    "Edge",
    "ExplorationResult",
    "Explorer",
    "InitialValencyReport",
    "InternTable",
    "Livelock",
    "ProcessSymmetry",
    "groups_by_input",
    "PhaseOutcome",
    "SuiteVerdict",
    "LinearizabilityChecker",
    "LinearizabilityVerdict",
    "ONE_VALENT",
    "ReplayReport",
    "RunAudit",
    "SafetyCounterexample",
    "Valency",
    "WaitFreedomAudit",
    "ZERO_VALENT",
    "audit_dac_run",
    "audit_task_run",
    "audit_wait_freedom",
    "check_linearizable",
    "check_pair_commutes",
    "verify_disjoint_commutativity",
    "verify_read_transparency",
    "classify",
    "verify_task_protocol",
    "contended_object",
    "find_critical_configuration",
    "initial_valency_report",
    "oracle_script",
    "replay_counterexample",
    "verify_replay",
]
