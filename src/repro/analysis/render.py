"""Human-readable rendering of runs, witnesses, and configurations.

The explorer's outputs — counterexample schedules, livelocks, critical
configurations — are the artifacts a user actually reads when a theorem
experiment speaks. These renderers turn them into terse, stable text
(used by the CLI, the examples, and error messages; covered by
``tests/analysis/test_render.py`` so the formats don't drift silently).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..runtime.history import ConcurrentHistory, Inv, Res, RunHistory
from .explorer import (
    Configuration,
    Edge,
    Explorer,
    Livelock,
    SafetyCounterexample,
)
from .valency_analyzer import CriticalReport


def render_schedule(
    explorer: Explorer,
    edges: Sequence[Edge],
    start: Optional[Configuration] = None,
) -> str:
    """Replay ``edges`` from ``start`` and render each step with the
    operation performed and the response received."""
    config = start if start is not None else explorer.initial_configuration()
    lines: List[str] = []
    for index, edge in enumerate(edges):
        automaton = explorer.processes[edge.pid]
        action = automaton.next_action(config.process_states[edge.pid])
        choice = f" [choice {edge.choice}]" if edge.choice else ""
        lines.append(
            f"  {index + 1:>3}. p{edge.pid}: {action} -> "
            f"{edge.response!r}{choice}"
        )
        config = explorer.step(config, edge.pid, edge.choice)
    return "\n".join(lines)


def render_counterexample(
    explorer: Explorer, counterexample: SafetyCounterexample
) -> str:
    """A violating schedule plus the violated properties."""
    parts = ["violating schedule:"]
    parts.append(render_schedule(explorer, counterexample.schedule))
    decisions = counterexample.configuration.decisions()
    if decisions:
        rendered = ", ".join(
            f"p{pid}={value!r}" for pid, value in sorted(decisions.items())
        )
        parts.append(f"  decisions: {rendered}")
    aborted = counterexample.configuration.aborted()
    if aborted:
        parts.append(f"  aborted: {sorted(aborted)}")
    for violation in counterexample.verdict.violations:
        parts.append(f"  violated: {violation}")
    return "\n".join(parts)


def render_livelock(explorer: Explorer, livelock: Livelock) -> str:
    """An adversarial loop: its prefix, its cycle, who starves."""
    parts = [f"prefix ({len(livelock.prefix)} steps):"]
    if livelock.prefix:
        parts.append(render_schedule(explorer, livelock.prefix))
    else:
        parts.append("  (starts at the initial configuration)")
    parts.append(f"cycle ({len(livelock.cycle)} steps, repeats forever):")
    parts.append(
        render_schedule(explorer, livelock.cycle, start=livelock.entry)
    )
    starving = sorted(
        pid
        for pid in livelock.moving
        if livelock.entry.statuses[pid][0] == "running"
    )
    parts.append(f"starving processes: {starving}")
    return "\n".join(parts)


def render_configuration(
    explorer: Explorer, config: Configuration
) -> str:
    """Statuses, pending actions, and object states of a configuration."""
    lines: List[str] = []
    for pid, status in enumerate(config.statuses):
        if status[0] == "running":
            action = explorer.processes[pid].next_action(
                config.process_states[pid]
            )
            lines.append(f"  p{pid}: running, poised at {action}")
        elif status[0] == "decided":
            lines.append(f"  p{pid}: decided {status[1]!r}")
        else:
            lines.append(f"  p{pid}: {status[0]}")
    for name, state in zip(explorer.object_names, config.object_states):
        lines.append(f"  {name}: {state!r}")
    return "\n".join(lines)


def render_critical_report(
    explorer: Explorer, report: CriticalReport
) -> str:
    """A critical configuration with its decisive hook steps."""
    parts = ["critical configuration:"]
    parts.append(render_configuration(explorer, report.configuration))
    for hook in report.hooks:
        parts.append(
            f"  if p{hook.edge.pid} steps (choice {hook.edge.choice}) "
            f"-> {hook.label}"
        )
    return "\n".join(parts)


def render_run_history(history: RunHistory, limit: int = 50) -> str:
    """A completed run: steps (truncated) and final outcomes."""
    lines: List[str] = []
    for step in history.steps[:limit]:
        lines.append(f"  {step}")
    if len(history.steps) > limit:
        lines.append(f"  ... ({len(history.steps) - limit} more steps)")
    if history.decisions:
        rendered = ", ".join(
            f"p{pid}={value!r}"
            for pid, value in sorted(history.decisions.items())
        )
        lines.append(f"  decisions: {rendered}")
    if history.aborted:
        lines.append(f"  aborted: {sorted(history.aborted)}")
    if history.halted:
        lines.append(f"  halted: {sorted(history.halted)}")
    return "\n".join(lines)


def render_concurrent_history(history: ConcurrentHistory) -> str:
    """Invocation/response events with nesting-friendly arrows."""
    lines: List[str] = []
    for event in history.events:
        if isinstance(event, Inv):
            lines.append(
                f"  p{event.pid} ---> [{event.op_id}] {event.operation}"
            )
        else:
            assert isinstance(event, Res)
            lines.append(
                f"  p{event.pid} <--- [{event.op_id}] {event.response!r}"
            )
    return "\n".join(lines)
