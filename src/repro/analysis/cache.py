"""Persistent content-addressed cache for exploration results.

Every test/bench/CLI invocation re-explores the same small instances:
the candidate suite, the Algorithm 2 input sweeps, the E01–E18 battery.
The graphs are pure functions of (protocol, n, inputs, explorer
options, code version), so they can be stored once and rehydrated on
every later run.

Keying
------

:func:`fingerprint` hashes a *canonical* rendering of the caller's
key components together with :func:`code_salt` — a digest over every
``.py`` file in the installed ``repro`` package. Any source edit
anywhere in the library therefore busts every entry; a cache hit always
means "the exact same code answered the exact same question before".
Components are canonicalized structurally (mappings and sets become
sorted tuples) and rendered with ``repr``, never pickled and never
hashed with ``hash()`` — the fingerprint is independent of
``PYTHONHASHSEED`` and of pickle's internal ordering.

Storage
-------

One entry = one file under ``<root>/<fp[:2]>/<fp>.pkl`` holding a
sha256 digest plus the pickled payload. Writes are atomic
(temp + ``os.replace``); a corrupt or digest-mismatched file is deleted
and reported as a miss, never returned. ``<root>`` defaults to
``$REPRO_CACHE_DIR`` or ``.repro-cache`` under the working directory.

Warm-hit validation
-------------------

:func:`explore_cached` additionally stores a :func:`graph_digest` —
a repr-based sha256 over the portable graph, the same style of digest
``tests/integration/test_fast_core_equivalence.py`` pins the fast core
against. On every warm hit the digest is recomputed from the
*rehydrated* payload and compared; a stale or hash-seed-dependent entry
raises :class:`CacheIntegrityError` instead of silently changing a
verdict.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Mapping,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

from .. import obs
from ..errors import CacheIntegrityError
from ..types import Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .explorer import ExplorationResult, Explorer

__all__ = [
    "CACHE_SCHEMA",
    "CacheIntegrityError",
    "CacheStats",
    "ExplorationCache",
    "canonicalize",
    "code_salt",
    "explore_cached",
    "fingerprint",
    "graph_digest",
]


#: Bumped whenever the payload layout changes; part of every fingerprint.
CACHE_SCHEMA = 1

_PACKAGE_ROOT = Path(__file__).resolve().parent.parent

#: Memoized code salt (one filesystem walk per process).
_code_salt: Optional[str] = None


def code_salt() -> str:
    """sha256 over every ``.py`` file of the installed ``repro`` package.

    Included in every fingerprint, so *any* source change invalidates
    the whole cache — coarse, but it makes staleness structurally
    impossible rather than a matter of careful dependency tracking.
    """
    global _code_salt
    if _code_salt is None:
        blob = hashlib.sha256()
        for path in sorted(_PACKAGE_ROOT.rglob("*.py")):
            blob.update(str(path.relative_to(_PACKAGE_ROOT)).encode())
            blob.update(path.read_bytes())
        _code_salt = blob.hexdigest()
    return _code_salt


def _canonical(value: Any) -> Any:
    """A deterministically ``repr``-able rendering of ``value``.

    Mappings become name-tagged sorted item tuples, sets become sorted
    tuples (sorted by ``repr`` — pure string comparison, hash-seed
    independent), sequences recurse. Everything else must already have
    a deterministic ``repr`` (numbers, strings, sentinels, tuples).
    """
    if isinstance(value, Mapping):
        items = [(_canonical(k), _canonical(v)) for k, v in value.items()]
        items.sort(key=repr)
        return ("mapping",) + tuple(items)
    if isinstance(value, (set, frozenset)):
        rendered = [_canonical(v) for v in sorted(value, key=repr)]
        return ("set",) + tuple(rendered)
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


#: Public name for the canonical rendering — the request objects in
#: :mod:`repro.api.requests` canonicalize through exactly this function
#: so their fingerprints and the exploration cache's agree structurally.
canonicalize = _canonical


def fingerprint(**components: Any) -> str:
    """Content address for one cacheable question.

    Keyword arguments name the question's parts (protocol factory
    identity, ``n``, inputs, explorer options, …); the code salt and
    schema version are always mixed in.
    """
    rendered = repr(
        (
            CACHE_SCHEMA,
            code_salt(),
            _canonical(components),
        )
    )
    return hashlib.sha256(rendered.encode()).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time shape of one cache directory."""

    root: str
    entries: int
    total_bytes: int


class ExplorationCache:
    """Content-addressed on-disk store for verification results.

    One instance also counts its own ``hits`` / ``misses`` / ``stores``
    so sweeps can report warm-vs-cold behaviour.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- low-level entry I/O --------------------------------------------

    def _entry_path(self, fp: str) -> Path:
        return self.root / fp[:2] / f"{fp}.pkl"

    def get(self, fp: str) -> Optional[Any]:
        """The payload stored under fingerprint ``fp``, or None.

        A corrupt entry (unreadable, truncated, digest mismatch) is
        deleted and counted as a miss.
        """
        path = self._entry_path(fp)
        try:
            raw = path.read_bytes()
            digest, payload_bytes = pickle.loads(raw)
            if hashlib.sha256(payload_bytes).hexdigest() != digest:
                raise ValueError("payload digest mismatch")
            payload = pickle.loads(payload_bytes)
        except FileNotFoundError:
            self.misses += 1
            obs.counter("cache.misses")
            obs.event("cache.get", fp=fp[:12], hit=False)
            return None
        except Exception:
            # Unreadable or tampered entry: drop it, report a miss. The
            # caller recomputes — a broken cache can cost time, never
            # correctness.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            obs.counter("cache.misses")
            obs.counter("cache.corrupt_entries")
            obs.event("cache.get", fp=fp[:12], hit=False, corrupt=True)
            return None
        self.hits += 1
        obs.counter("cache.hits")
        obs.event("cache.get", fp=fp[:12], hit=True)
        return payload

    def put(self, fp: str, payload: Any) -> None:
        """Store ``payload`` under ``fp`` (atomic write)."""
        payload_bytes = pickle.dumps(payload, protocol=4)
        digest = hashlib.sha256(payload_bytes).hexdigest()
        path = self._entry_path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(pickle.dumps((digest, payload_bytes), protocol=4))
        os.replace(tmp, path)
        self.stores += 1
        obs.counter("cache.stores")
        obs.event("cache.put", fp=fp[:12], bytes=len(payload_bytes))

    def get_or_compute(
        self, components: Mapping[str, Any], compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """``(payload, was_hit)`` for the question named by ``components``.

        On a miss, ``compute()`` runs and its result is stored before
        being returned.
        """
        fp = fingerprint(**components)
        payload = self.get(fp)
        if payload is not None:
            return payload, True
        payload = compute()
        self.put(fp, payload)
        return payload, False

    # -- maintenance -----------------------------------------------------

    def _entry_files(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.pkl"))

    def stats(self) -> CacheStats:
        files = self._entry_files()
        total = 0
        for path in files:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheStats(
            root=str(self.root), entries=len(files), total_bytes=total
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entry_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# -- exploration-graph caching ----------------------------------------------


def graph_digest(portable: Mapping[str, Any]) -> str:
    """Repr-based sha256 over a portable exploration graph.

    The portable form is built from lists, tuples, ints and hashable
    leaf values in deterministic (BFS) order, so its ``repr`` is
    bit-stable across interpreter runs and ``PYTHONHASHSEED`` values —
    the same style of digest the fast-core equivalence tests pin the
    explorer against.
    """
    parts = (
        portable["complete"],
        portable["nodes"],
        portable["order_len"],
        portable["successors"],
        portable["parents"],
        portable["reduced"],
        portable["source_node"],
        portable["initial_permutation"],
        portable["parent_perms"],
    )
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def explore_cached(
    explorer: "Explorer",
    cache: Optional[ExplorationCache],
    components: Mapping[str, Any],
    max_configurations: int = 200_000,
    include_decision_table: bool = False,
) -> Tuple["ExplorationResult", bool]:
    """Explore via ``explorer`` or rehydrate a cached graph.

    ``components`` must identify the *instance* (factory identity, n,
    inputs, options); explorer options that change the graph belong in
    there too. Returns ``(result, was_hit)``. With
    ``include_decision_table`` the backward decision fixpoint is
    computed on the miss path and its table rides along in the entry,
    so warm hits answer valency queries without any traversal.

    On a warm hit the stored :func:`graph_digest` is recomputed from
    the rehydrated payload; a mismatch raises
    :class:`CacheIntegrityError` (stale entries must fail loudly, not
    alter verdicts).
    """
    if cache is None:
        result = explorer.explore(max_configurations=max_configurations)
        if include_decision_table:
            explorer.decision_table(exploration=result)
        return result, False

    full_components = dict(components)
    full_components["max_configurations"] = max_configurations
    full_components["include_decision_table"] = include_decision_table
    fp = fingerprint(**full_components)
    payload = cache.get(fp)
    if payload is not None:
        if graph_digest(payload["portable"]) != payload["graph_digest"]:
            obs.counter("cache.integrity_failures")
            obs.event("cache.integrity_failure", fp=fp[:12])
            raise CacheIntegrityError(
                "cached exploration graph failed digest validation "
                f"(entry {fp[:12]}…): stale or corrupt entry"
            )
        result = explorer.adopt_portable(payload["portable"])
        decision_sets = payload.get("decision_sets")
        if decision_sets is not None:
            _install_decision_sets(explorer, result, decision_sets)
        return result, True

    result = explorer.explore(max_configurations=max_configurations)
    portable = result.to_portable()
    payload = {
        "portable": portable,
        "graph_digest": graph_digest(portable),
        "decision_sets": None,
    }
    if include_decision_table:
        table = explorer.decision_table(exploration=result)
        payload["decision_sets"] = [
            sorted(table[cid], key=repr) for cid in result.order_ids
        ]
    cache.put(fp, payload)
    return result, False


def _install_decision_sets(
    explorer: "Explorer",
    result: "ExplorationResult",
    decision_sets,
) -> None:
    """Seed the explorer's shared decision-set table from a cached
    per-position list (aligned with ``result.order_ids``)."""
    table: Dict[int, FrozenSet[Value]] = explorer._decision_sets
    for cid, values in zip(result.order_ids, decision_sets):
        table[cid] = frozenset(values)
