"""Decision tasks: what it means for a protocol to be *correct*.

A :class:`DecisionTask` packages, for one distributed decision problem:

* the number of processes and the allowed input assignments (needed by
  the explorer to enumerate initial configurations);
* the **safety predicate** over (inputs, decisions, aborts) — checked
  on every reachable configuration by the explorer and on every
  completed run by the simulation auditors;
* which processes are *obliged to decide* under which liveness rubric
  (wait-free for consensus / set agreement; the weaker distinguished-
  process rubric for ``n``-DAC).

Tasks provided: :class:`ConsensusTask`, :class:`KSetAgreementTask`, and
:class:`DacDecisionTask` (adapting :class:`repro.core.dac.DacTask` to
the uniform interface).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SpecificationError
from ..core.dac import DacTask
from ..types import ProcessId, Value, require


@dataclass(frozen=True)
class SafetyVerdict:
    """Outcome of a safety audit: ``ok`` plus explanations on failure."""

    ok: bool
    violations: Tuple[str, ...] = ()

    @staticmethod
    def passed() -> "SafetyVerdict":
        return SafetyVerdict(ok=True)

    @staticmethod
    def failed(*violations: str) -> "SafetyVerdict":
        return SafetyVerdict(ok=False, violations=tuple(violations))


class DecisionTask(ABC):
    """A decision problem for ``num_processes`` asynchronous processes."""

    def __init__(self, num_processes: int) -> None:
        require(
            num_processes >= 1,
            SpecificationError,
            f"a task needs at least one process, got {num_processes}",
        )
        self.num_processes = num_processes

    @abstractmethod
    def input_assignments(self) -> Iterable[Tuple[Value, ...]]:
        """Every input assignment the explorer should try."""

    @abstractmethod
    def check_safety(
        self,
        inputs: Sequence[Value],
        decisions: Mapping[ProcessId, Value],
        aborted: Sequence[ProcessId] = (),
    ) -> SafetyVerdict:
        """Audit (possibly partial) outcomes against the task's safety
        properties. Must be monotone: once violated, forever violated —
        the explorer prunes on first violation."""

    def may_abort(self, pid: ProcessId) -> bool:
        """True if ``pid`` is permitted to abort (n-DAC's ``p`` only)."""
        return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} n={self.num_processes}>"


class ConsensusTask(DecisionTask):
    """Binary (or small-domain) consensus among ``n`` processes.

    * Agreement — all decided values equal.
    * Validity — every decided value is some process's input.
    """

    def __init__(self, num_processes: int, domain: Sequence[Value] = (0, 1)) -> None:
        super().__init__(num_processes)
        require(
            len(domain) >= 2,
            SpecificationError,
            "consensus needs an input domain with at least two values",
        )
        self.domain = tuple(domain)

    def input_assignments(self) -> Iterable[Tuple[Value, ...]]:
        return itertools.product(self.domain, repeat=self.num_processes)

    def check_safety(
        self,
        inputs: Sequence[Value],
        decisions: Mapping[ProcessId, Value],
        aborted: Sequence[ProcessId] = (),
    ) -> SafetyVerdict:
        violations: List[str] = []
        if aborted:
            violations.append(f"consensus permits no aborts, saw {list(aborted)}")
        values = {repr(v): v for v in decisions.values()}
        if len(values) > 1:
            violations.append(
                f"agreement violated: decisions {sorted(values)}"
            )
        valid_inputs = set(inputs)
        for pid, value in decisions.items():
            if value not in valid_inputs:
                violations.append(
                    f"validity violated: process {pid} decided {value!r}, "
                    f"not an input"
                )
        if violations:
            return SafetyVerdict.failed(*violations)
        return SafetyVerdict.passed()


class KSetAgreementTask(DecisionTask):
    """``k``-set agreement among ``n`` processes.

    * k-Agreement — at most ``k`` distinct decided values.
    * Validity — every decided value is some process's input.

    Inputs default to distinct per-process values (the hardest case:
    with fewer distinct inputs the problem only gets easier).
    """

    def __init__(
        self,
        num_processes: int,
        k: int,
        domain: Optional[Sequence[Value]] = None,
    ) -> None:
        super().__init__(num_processes)
        require(k >= 1, SpecificationError, f"k must be >= 1, got {k}")
        self.k = k
        self.domain = (
            tuple(domain) if domain is not None else tuple(range(num_processes))
        )

    def input_assignments(self) -> Iterable[Tuple[Value, ...]]:
        if len(self.domain) == self.num_processes:
            # Distinct-inputs canonical assignment plus a few collisions.
            yield tuple(self.domain)
            if self.num_processes >= 2:
                collapsed = (self.domain[0],) * self.num_processes
                yield collapsed
        else:
            yield from itertools.product(self.domain, repeat=self.num_processes)

    def check_safety(
        self,
        inputs: Sequence[Value],
        decisions: Mapping[ProcessId, Value],
        aborted: Sequence[ProcessId] = (),
    ) -> SafetyVerdict:
        violations: List[str] = []
        if aborted:
            violations.append(
                f"set agreement permits no aborts, saw {list(aborted)}"
            )
        values = {repr(v): v for v in decisions.values()}
        if len(values) > self.k:
            violations.append(
                f"{self.k}-agreement violated: {len(values)} distinct "
                f"decisions {sorted(values)}"
            )
        valid_inputs = set(inputs)
        for pid, value in decisions.items():
            if value not in valid_inputs:
                violations.append(
                    f"validity violated: process {pid} decided {value!r}, "
                    f"not an input"
                )
        if violations:
            return SafetyVerdict.failed(*violations)
        return SafetyVerdict.passed()


class DacDecisionTask(DecisionTask):
    """The ``n``-DAC problem as a :class:`DecisionTask` (Section 4).

    Wraps :class:`repro.core.dac.DacTask`: binary inputs, Agreement,
    Validity, distinguished-process abort, Nontriviality. The
    Nontriviality check needs step counts, which the explorer supplies
    separately via :meth:`check_nontriviality`.
    """

    def __init__(self, num_processes: int, distinguished: ProcessId = 0) -> None:
        super().__init__(num_processes)
        self.core = DacTask(num_processes, distinguished)
        self.distinguished = distinguished

    def input_assignments(self) -> Iterable[Tuple[Value, ...]]:
        return itertools.product((0, 1), repeat=self.num_processes)

    def may_abort(self, pid: ProcessId) -> bool:
        return pid == self.distinguished

    def check_safety(
        self,
        inputs: Sequence[Value],
        decisions: Mapping[ProcessId, Value],
        aborted: Sequence[ProcessId] = (),
    ) -> SafetyVerdict:
        verdict = self.core.check(
            inputs=dict(enumerate(inputs)),
            decisions=dict(decisions),
            aborted=list(aborted),
            steps_taken=None,
        )
        if verdict.ok:
            return SafetyVerdict.passed()
        return SafetyVerdict.failed(*verdict.violations)

    def check_nontriviality(
        self,
        inputs: Sequence[Value],
        aborted: Sequence[ProcessId],
        steps_taken: Mapping[ProcessId, int],
    ) -> SafetyVerdict:
        """Nontriviality: if ``p`` aborted, someone else took a step."""
        if self.distinguished not in aborted:
            return SafetyVerdict.passed()
        others_moved = any(
            steps_taken.get(pid, 0) > 0
            for pid in range(self.num_processes)
            if pid != self.distinguished
        )
        if others_moved:
            return SafetyVerdict.passed()
        return SafetyVerdict.failed(
            "nontriviality violated: the distinguished process aborted in a "
            "solo run"
        )

    @staticmethod
    def paper_initial_inputs(n: int, distinguished: ProcessId = 0) -> Tuple[int, ...]:
        """The initial configuration ``I`` of Theorem 4.2's proof: the
        distinguished process has input 1, everyone else 0."""
        return tuple(1 if pid == distinguished else 0 for pid in range(n))
