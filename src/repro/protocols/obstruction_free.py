"""Obstruction-free consensus from registers (round-based adopt-commit).

Registers alone cannot solve wait-free consensus (FLP/Herlihy, level 1
of the hierarchy) — but they *can* solve **obstruction-free** consensus:
every process that eventually runs alone decides. This is exactly the
liveness class of the n-DAC problem's Termination (b) ("if any process
q ≠ p takes infinitely many steps *solo*, then q eventually decides"),
so it belongs in this reproduction as the register-level showcase of
the solo-run analysis machinery.

The protocol is the classical round structure. Round ``r`` has ``2n``
single-writer registers ``AC{r}A{i}`` / ``AC{r}B{i}``. A process with
estimate ``v`` executes, in round ``r``:

1. write ``v`` to ``A[self]``; read all ``A`` slots;
2. write ``(True, v)`` to ``B[self]`` if every non-NIL ``A`` slot
   equals ``v``, else ``(False, v)``; read all ``B`` slots;
3. let ``T`` = values carried by ``(True, ·)`` entries seen:
   * if no ``(False, ·)`` was seen and ``T = {w}`` — **decide** ``w``;
   * elif ``T`` nonempty — adopt ``min(T)`` as the new estimate
     (the classical argument shows ``|T| ≤ 1``, so the ``min`` is
     moot — we assert the claim in the tests rather than rely on it);
   * else keep the current estimate;
   then enter round ``r + 1``.

Safety (agreement + validity) holds for *every* schedule — the
experiments model-check it exhaustively for small instances. Liveness
is obstruction-freedom only: a solo window of one full round decides,
while a contention adversary can push the processes through round
after round forever (we exhibit the escalation rather than a cycle —
the round counter grows, so the configuration graph of the *unbounded*
protocol is infinite; the bounded instance halts undecided at its round
cap, and the tests find schedules that reach the cap).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from ..errors import SpecificationError
from ..objects.register import RegisterSpec
from ..objects.spec import SequentialSpec
from ..runtime.events import Action, Decide, Halt, Invoke
from ..runtime.process import ProcessAutomaton
from ..types import NIL, ProcessId, Value, op, require


def adopt_commit_round_objects(
    num_processes: int, rounds: int, prefix: str = "AC"
) -> Dict[str, SequentialSpec]:
    """The register table for ``rounds`` rounds of the protocol."""
    objects: Dict[str, SequentialSpec] = {}
    for round_index in range(rounds):
        for pid in range(num_processes):
            objects[f"{prefix}{round_index}A{pid}"] = RegisterSpec(NIL)
            objects[f"{prefix}{round_index}B{pid}"] = RegisterSpec(NIL)
    return objects


class ObstructionFreeConsensusProcess(ProcessAutomaton):
    """One participant of the round-based protocol.

    Local state (all-hashable tuples):

    ``("writeA", round, estimate)`` →
    ``("readA", round, estimate, index, all_match)`` →
    ``("writeB", round, estimate, flag)`` →
    ``("readB", round, estimate, index, trues, saw_false)`` →
    decide / next round / ``("exhausted",)`` at the round cap.
    """

    def __init__(
        self,
        pid: ProcessId,
        value: Value,
        num_processes: int,
        max_rounds: int,
        prefix: str = "AC",
    ) -> None:
        super().__init__(pid)
        require(max_rounds >= 1, SpecificationError, "need at least one round")
        self.value = value
        self.num_processes = num_processes
        self.max_rounds = max_rounds
        self.prefix = prefix

    # -- helpers -------------------------------------------------------------

    def _a(self, round_index: int, pid: ProcessId) -> str:
        return f"{self.prefix}{round_index}A{pid}"

    def _b(self, round_index: int, pid: ProcessId) -> str:
        return f"{self.prefix}{round_index}B{pid}"

    # -- automaton -----------------------------------------------------------

    def initial_state(self) -> Hashable:
        return ("writeA", 0, self.value)

    def next_action(self, state: Hashable) -> Action:
        tag = state[0]
        if tag == "writeA":
            _tag, round_index, estimate = state
            return Invoke(self._a(round_index, self.pid), op("write", estimate))
        if tag == "readA":
            _tag, round_index, _estimate, index, _all_match = state
            return Invoke(self._a(round_index, index), op("read"))
        if tag == "writeB":
            _tag, round_index, estimate, flag = state
            return Invoke(
                self._b(round_index, self.pid),
                op("write", (flag, estimate)),
            )
        if tag == "readB":
            _tag, round_index, _estimate, index, _trues, _saw_false = state
            return Invoke(self._b(round_index, index), op("read"))
        if tag == "decided":
            return Decide(state[1])
        assert tag == "exhausted"
        return Halt()

    def transition(self, state: Hashable, response: Value) -> Hashable:
        tag = state[0]
        if tag == "writeA":
            _tag, round_index, estimate = state
            return ("readA", round_index, estimate, 0, True)
        if tag == "readA":
            _tag, round_index, estimate, index, all_match = state
            if response is not NIL and response != estimate:
                all_match = False
            if index + 1 < self.num_processes:
                return ("readA", round_index, estimate, index + 1, all_match)
            return ("writeB", round_index, estimate, all_match)
        if tag == "writeB":
            _tag, round_index, estimate, _flag = state
            return ("readB", round_index, estimate, 0, (), False)
        assert tag == "readB"
        _tag, round_index, estimate, index, trues, saw_false = state
        if response is not NIL:
            flag, value = response
            if flag:
                if value not in trues:
                    trues = tuple(sorted(trues + (value,), key=repr))
            else:
                saw_false = True
        if index + 1 < self.num_processes:
            return ("readB", round_index, estimate, index + 1, trues, saw_false)
        # End of round: decide, adopt, or escalate.
        if not saw_false and len(trues) == 1:
            return ("decided", trues[0])
        if trues:
            estimate = min(trues, key=repr)
        if round_index + 1 >= self.max_rounds:
            return ("exhausted",)
        return ("writeA", round_index + 1, estimate)


def obstruction_free_processes(
    inputs: Tuple[Value, ...],
    max_rounds: int = 3,
    prefix: str = "AC",
) -> List[ObstructionFreeConsensusProcess]:
    """Instantiate the protocol for one input assignment."""
    n = len(inputs)
    return [
        ObstructionFreeConsensusProcess(
            pid=pid,
            value=inputs[pid],
            num_processes=n,
            max_rounds=max_rounds,
            prefix=prefix,
        )
        for pid in range(n)
    ]
