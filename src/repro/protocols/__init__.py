"""Protocols: algorithms over shared objects.

* :mod:`repro.protocols.tasks` — decision-task definitions;
* :mod:`repro.protocols.dac_from_pac` — Algorithm 2 (Theorem 4.1);
* :mod:`repro.protocols.consensus` — consensus protocols per catalog
  object (hierarchy tour);
* :mod:`repro.protocols.set_agreement` — k-set agreement protocols
  backing every power lower bound;
* :mod:`repro.protocols.candidates` — doomed candidates for the
  impossibility experiments;
* :mod:`repro.protocols.implementation` — the implementation framework
  and client harness;
* :mod:`repro.protocols.embodiment` — Observation 5.1 and Lemma 6.4
  implementations;
* :mod:`repro.protocols.universal` — Herlihy's universal construction.
"""

from .candidates import (
    CandidateSystem,
    ScanningRacerProcess,
    consensus_via_queue,
    consensus_via_test_and_set,
    all_candidates,
    consensus_via_exhausted_consensus,
    consensus_via_pac_retry,
    consensus_via_strong_sa,
    dac_via_consensus,
    dac_via_sa_arbiter,
)
from .consensus import (
    CasConsensusProcess,
    CombinedPacConsensusProcess,
    OneShotConsensusProcess,
    QueueConsensusProcess,
    StickyBitConsensusProcess,
    TestAndSetConsensusProcess,
    one_shot_consensus_processes,
    queue_consensus_objects,
)
from .dac_from_pac import Algorithm2Process, algorithm2_processes
from .embodiment import (
    bundle_from_consensus_and_sa,
    combined_pac_from_parts,
    consensus_from_combined,
    on_prime_from_consensus_and_sa,
    pac_from_combined,
)
from .obstruction_free import (
    ObstructionFreeConsensusProcess,
    adopt_commit_round_objects,
    obstruction_free_processes,
)
from .snapshot import AfekSnapshotImplementation
from .implementation import (
    ClientRunResult,
    Implementation,
    RedirectImplementation,
    check_implementation,
    run_clients,
)
from .set_agreement import (
    BundleProcess,
    collection_partition,
    GroupConsensusProcess,
    NkSaProcess,
    StrongSaProcess,
    bundle_processes,
    group_partition_objects,
    group_partition_processes,
    strong_sa_processes,
    trivial_processes,
)
from .tasks import (
    ConsensusTask,
    DacDecisionTask,
    DecisionTask,
    KSetAgreementTask,
    SafetyVerdict,
)
from .universal import UniversalConstruction

__all__ = [
    "AfekSnapshotImplementation",
    "Algorithm2Process",
    "BundleProcess",
    "CandidateSystem",
    "CasConsensusProcess",
    "ClientRunResult",
    "CombinedPacConsensusProcess",
    "ConsensusTask",
    "DacDecisionTask",
    "DecisionTask",
    "GroupConsensusProcess",
    "Implementation",
    "KSetAgreementTask",
    "NkSaProcess",
    "ObstructionFreeConsensusProcess",
    "OneShotConsensusProcess",
    "QueueConsensusProcess",
    "RedirectImplementation",
    "SafetyVerdict",
    "ScanningRacerProcess",
    "StickyBitConsensusProcess",
    "StrongSaProcess",
    "TestAndSetConsensusProcess",
    "UniversalConstruction",
    "adopt_commit_round_objects",
    "algorithm2_processes",
    "all_candidates",
    "bundle_from_consensus_and_sa",
    "bundle_processes",
    "check_implementation",
    "collection_partition",
    "combined_pac_from_parts",
    "consensus_from_combined",
    "consensus_via_exhausted_consensus",
    "consensus_via_pac_retry",
    "consensus_via_queue",
    "consensus_via_strong_sa",
    "consensus_via_test_and_set",
    "dac_via_consensus",
    "dac_via_sa_arbiter",
    "group_partition_objects",
    "obstruction_free_processes",
    "group_partition_processes",
    "on_prime_from_consensus_and_sa",
    "one_shot_consensus_processes",
    "pac_from_combined",
    "queue_consensus_objects",
    "run_clients",
    "strong_sa_processes",
    "trivial_processes",
]
