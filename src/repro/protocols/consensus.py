"""Consensus protocols over the object catalog.

These protocols back the constructive halves of the paper's consensus-
number claims (and experiment E13's hierarchy tour):

* :class:`OneShotConsensusProcess` — consensus among ``m`` processes
  from one ``m``-consensus object (propose; decide the response);
* :class:`CombinedPacConsensusProcess` — the same via the ``proposeC``
  face of an ``(n, m)``-PAC object (Theorem 5.3's upper half /
  Observation 5.1(c));
* :class:`CasConsensusProcess` — consensus among any number of
  processes from one compare-and-swap cell (level ∞);
* :class:`StickyBitConsensusProcess` — binary consensus from one sticky
  bit;
* :class:`TestAndSetConsensusProcess` — 2-process consensus from a
  test-and-set bit plus two registers (Herlihy's level-2 protocol);
* :class:`QueueConsensusProcess` — 2-process consensus from a
  pre-loaded FIFO queue plus two registers.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence

from ..errors import SpecificationError
from ..types import BOTTOM, NIL, ProcessId, Value, op, require
from ..runtime.events import Action, Decide, Invoke
from ..runtime.process import ProcessAutomaton


class OneShotConsensusProcess(ProcessAutomaton):
    """Propose to an ``m``-consensus object; decide its response.

    Correct for up to ``m`` processes (each proposes exactly once, so no
    propose sees ⊥).
    """

    def __init__(self, pid: ProcessId, value: Value, obj: str = "CONS") -> None:
        super().__init__(pid)
        self.value = value
        self.obj = obj

    def initial_state(self) -> Hashable:
        return ("propose",)

    def next_action(self, state: Hashable) -> Action:
        if state[0] == "propose":
            return Invoke(self.obj, op("propose", self.value))
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        return ("decided", response)


class CombinedPacConsensusProcess(ProcessAutomaton):
    """Consensus via the ``proposeC`` operation of an ``(n, m)``-PAC.

    Observation 5.1(c): the combined object implements its embedded
    ``m``-consensus object — this protocol *is* that implementation in
    use. Correct for up to ``m`` processes.
    """

    def __init__(self, pid: ProcessId, value: Value, obj: str = "NMPAC") -> None:
        super().__init__(pid)
        self.value = value
        self.obj = obj

    def initial_state(self) -> Hashable:
        return ("propose",)

    def next_action(self, state: Hashable) -> Action:
        if state[0] == "propose":
            return Invoke(self.obj, op("proposeC", self.value))
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        return ("decided", response)


class CasConsensusProcess(ProcessAutomaton):
    """Consensus from one compare-and-swap cell (consensus number ∞).

    ``compare_and_swap(NIL, v)`` returns the pre-existing value: NIL to
    the unique winner (who installed ``v`` and decides it), the winner's
    value to everyone else.
    """

    def __init__(self, pid: ProcessId, value: Value, obj: str = "CAS") -> None:
        super().__init__(pid)
        self.value = value
        self.obj = obj

    def initial_state(self) -> Hashable:
        return ("cas",)

    def next_action(self, state: Hashable) -> Action:
        if state[0] == "cas":
            return Invoke(self.obj, op("compare_and_swap", NIL, self.value))
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        winner = self.value if response is NIL else response
        return ("decided", winner)


class StickyBitConsensusProcess(ProcessAutomaton):
    """Binary consensus from one sticky bit: write your input, decide
    the stored (first-written) bit. Works for any number of processes —
    on *binary* inputs only."""

    def __init__(self, pid: ProcessId, value: Value, obj: str = "STICKY") -> None:
        super().__init__(pid)
        require(value in (0, 1), SpecificationError, "sticky consensus is binary")
        self.value = value
        self.obj = obj

    def initial_state(self) -> Hashable:
        return ("write",)

    def next_action(self, state: Hashable) -> Action:
        if state[0] == "write":
            return Invoke(self.obj, op("write", self.value))
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        return ("decided", response)


class TestAndSetConsensusProcess(ProcessAutomaton):
    """Herlihy's 2-process consensus from test-and-set + registers.

    Process ``pid ∈ {0, 1}``: write your input to register ``R{pid}``,
    then ``test_and_set()``. Response 0 → you won, decide your input;
    response 1 → the other process won, read its register and decide
    that. Correct only for two processes (test-and-set is level 2).
    """

    #: Not a pytest test class, despite the Test* name.
    __test__ = False

    def __init__(
        self,
        pid: ProcessId,
        value: Value,
        tas: str = "TAS",
        register_prefix: str = "R",
    ) -> None:
        super().__init__(pid)
        require(pid in (0, 1), SpecificationError, "2-process protocol: pid in {0,1}")
        self.value = value
        self.tas = tas
        self.register_prefix = register_prefix

    def initial_state(self) -> Hashable:
        return ("announce",)

    def next_action(self, state: Hashable) -> Action:
        tag = state[0]
        if tag == "announce":
            return Invoke(f"{self.register_prefix}{self.pid}", op("write", self.value))
        if tag == "race":
            return Invoke(self.tas, op("test_and_set"))
        if tag == "fetch":
            return Invoke(f"{self.register_prefix}{1 - self.pid}", op("read"))
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        tag = state[0]
        if tag == "announce":
            return ("race",)
        if tag == "race":
            if response == 0:
                return ("decided", self.value)
            return ("fetch",)
        assert tag == "fetch"
        return ("decided", response)


class QueueConsensusProcess(ProcessAutomaton):
    """Herlihy's 2-process consensus from a pre-loaded FIFO queue.

    The queue must be initialized to ``("winner", "loser")`` (see
    :func:`queue_consensus_objects`). Write your input to ``R{pid}``,
    dequeue; "winner" → decide your input, "loser" → decide the other
    register's value.
    """

    def __init__(
        self,
        pid: ProcessId,
        value: Value,
        queue: str = "Q",
        register_prefix: str = "R",
    ) -> None:
        super().__init__(pid)
        require(pid in (0, 1), SpecificationError, "2-process protocol: pid in {0,1}")
        self.value = value
        self.queue = queue
        self.register_prefix = register_prefix

    def initial_state(self) -> Hashable:
        return ("announce",)

    def next_action(self, state: Hashable) -> Action:
        tag = state[0]
        if tag == "announce":
            return Invoke(f"{self.register_prefix}{self.pid}", op("write", self.value))
        if tag == "race":
            return Invoke(self.queue, op("dequeue"))
        if tag == "fetch":
            return Invoke(f"{self.register_prefix}{1 - self.pid}", op("read"))
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        tag = state[0]
        if tag == "announce":
            return ("race",)
        if tag == "race":
            if response == "winner":
                return ("decided", self.value)
            return ("fetch",)
        assert tag == "fetch"
        return ("decided", response)


def queue_consensus_objects(register_initial: Value = NIL) -> dict:
    """Object table for :class:`QueueConsensusProcess` (pre-loaded queue)."""
    from ..objects.classic import QueueSpec
    from ..objects.register import RegisterSpec

    return {
        "Q": QueueSpec(initial=("winner", "loser")),
        "R0": RegisterSpec(register_initial),
        "R1": RegisterSpec(register_initial),
    }


def one_shot_consensus_processes(
    inputs: Sequence[Value], obj: str = "CONS"
) -> List[OneShotConsensusProcess]:
    """Instantiate :class:`OneShotConsensusProcess` for each input."""
    return [
        OneShotConsensusProcess(pid, value, obj)
        for pid, value in enumerate(inputs)
    ]


def one_shot_consensus_symmetry(inputs: Sequence[Value]):
    """The process symmetry of a one-shot consensus instance, or None.

    Equal-input processes are fully interchangeable: the automaton's
    operations mention only the proposed value, and the
    ``m``-consensus object's state (``winner``, ``applied``) is pid-free,
    so no object permuter is needed (see
    :mod:`repro.analysis.symmetry`).
    """
    from ..analysis.symmetry import ProcessSymmetry, groups_by_input

    groups = groups_by_input(inputs)
    if not groups:
        return None
    return ProcessSymmetry(len(inputs), groups)
