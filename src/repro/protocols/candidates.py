"""Doomed candidate algorithms for the paper's impossibility results.

Theorems 4.2, 5.2, and 6.5 quantify over *all* algorithms, which no
test suite can enumerate. What we *can* do — and what these candidates
are for — is run the paper's adversary against the natural algorithms a
practitioner would actually write, and watch each one fail in exactly
the way the proofs predict (experiments E4, E5, E7, E13):

* safety candidates fail with a concrete violating schedule found by
  the explorer (agreement or validity broken);
* liveness candidates fail with a concrete *adversarial loop*: a
  reachable cycle in the configuration graph in which some process
  takes steps forever without deciding (the "infinitely many steps
  without deciding" runs the bivalency inductions construct).

Each candidate is packaged as a :class:`CandidateSystem` so the
experiment harness can run them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

from ..errors import SpecificationError
from ..types import BOTTOM, ProcessId, Value, op, require
from ..objects.consensus import MConsensusSpec
from ..objects.register import RegisterSpec
from ..objects.spec import SequentialSpec
from ..core.combined import CombinedPacSpec
from ..core.set_agreement import StrongSetAgreementSpec
from ..runtime.events import Abort, Action, Decide, Invoke
from ..runtime.process import ProcessAutomaton
from .tasks import ConsensusTask, DacDecisionTask, DecisionTask


@dataclass
class CandidateSystem:
    """A candidate algorithm bundled with its target task.

    ``expected_failure`` is ``"safety"`` (the explorer should find a
    violating schedule) or ``"liveness"`` (the explorer should find an
    adversarial non-deciding loop); ``"none"`` marks control candidates
    that are actually correct (used to validate the harness itself).
    """

    name: str
    objects: Dict[str, SequentialSpec]
    processes: List[ProcessAutomaton]
    task: DecisionTask
    inputs: Tuple[Value, ...]
    expected_failure: str
    notes: str = ""


class ConsensusViaExhaustedConsensus(ProcessAutomaton):
    """Try (m+1)-consensus with one m-consensus object.

    Propose; decide a non-⊥ response; on ⊥ (you were the (m+1)-th)
    decide your own input. The ⊥ path breaks Agreement: the adversary
    schedules the odd process out last with a conflicting input.
    """

    def __init__(self, pid: ProcessId, value: Value, obj: str = "CONS") -> None:
        super().__init__(pid)
        self.value = value
        self.obj = obj

    def initial_state(self) -> Hashable:
        return ("propose",)

    def next_action(self, state: Hashable) -> Action:
        if state[0] == "propose":
            return Invoke(self.obj, op("propose", self.value))
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        if response is BOTTOM:
            return ("decided", self.value)
        return ("decided", response)


class ConsensusViaStrongSA(ProcessAutomaton):
    """Try consensus with one strong 2-SA object: decide its response.

    The 2-SA answers with *either* of the first two distinct proposals,
    adversary's choice — so two processes with different inputs can be
    told different things. Safety failure; the explorer exhibits the
    response choices. (This is the constructive face of "2-SA has
    consensus number 1", experiment E13.)
    """

    def __init__(self, pid: ProcessId, value: Value, obj: str = "SA") -> None:
        super().__init__(pid)
        self.value = value
        self.obj = obj

    def initial_state(self) -> Hashable:
        return ("propose",)

    def next_action(self, state: Hashable) -> Action:
        if state[0] == "propose":
            return Invoke(self.obj, op("propose", self.value))
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        return ("decided", response)


class DacViaConsensusProcess(ProcessAutomaton):
    """Try (n+1)-DAC with one n-consensus object.

    Everyone proposes its input. Non-⊥ → decide it. On ⊥, the
    distinguished process aborts; a non-distinguished process falls back
    to ``fallback``:

    * ``"own"`` — decide your own input (Agreement/Validity failure);
    * ``"spin"`` — re-read a register forever (Termination (b) failure:
      the explorer finds the solo non-deciding loop).
    """

    def __init__(
        self,
        pid: ProcessId,
        value: Value,
        distinguished: bool,
        fallback: str = "own",
        obj: str = "CONS",
        spin_register: str = "R0",
    ) -> None:
        super().__init__(pid)
        require(
            fallback in ("own", "spin"),
            SpecificationError,
            f"unknown fallback {fallback!r}",
        )
        self.value = value
        self.distinguished = distinguished
        self.fallback = fallback
        self.obj = obj
        self.spin_register = spin_register

    def initial_state(self) -> Hashable:
        return ("propose",)

    def next_action(self, state: Hashable) -> Action:
        tag = state[0]
        if tag == "propose":
            return Invoke(self.obj, op("propose", self.value))
        if tag == "spin":
            return Invoke(self.spin_register, op("read"))
        if tag == "abort":
            return Abort()
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        tag = state[0]
        if tag == "spin":
            return ("spin",)
        assert tag == "propose"
        if response is not BOTTOM:
            return ("decided", response)
        if self.distinguished:
            return ("abort",)
        if self.fallback == "own":
            return ("decided", self.value)
        return ("spin",)


class DacViaSaArbiterProcess(ProcessAutomaton):
    """Try (n+1)-DAC by funnelling through a 2-SA before n-consensus.

    Each process first proposes its input to a 2-SA "arbiter", then
    proposes the arbiter's answer to an n-consensus object; ⊥ from the
    consensus object means deciding the arbiter's answer directly (the
    distinguished process aborts instead). Looks clever — the arbiter
    squeezes n+1 opinions into ≤ 2 — but the ⊥-path decision skips the
    consensus object, and the adversary desynchronizes the two answers
    (Agreement failure), exactly the kind of hope Theorem 4.2 forecloses.
    """

    def __init__(
        self,
        pid: ProcessId,
        value: Value,
        distinguished: bool,
        sa: str = "SA",
        cons: str = "CONS",
    ) -> None:
        super().__init__(pid)
        self.value = value
        self.distinguished = distinguished
        self.sa = sa
        self.cons = cons

    def initial_state(self) -> Hashable:
        return ("arbiter",)

    def next_action(self, state: Hashable) -> Action:
        tag = state[0]
        if tag == "arbiter":
            return Invoke(self.sa, op("propose", self.value))
        if tag == "consensus":
            return Invoke(self.cons, op("propose", state[1]))
        if tag == "abort":
            return Abort()
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        tag = state[0]
        if tag == "arbiter":
            return ("consensus", response)
        assert tag == "consensus"
        if response is not BOTTOM:
            return ("decided", response)
        if self.distinguished:
            return ("abort",)
        return ("decided", state[1])


class PacRetryConsensusProcess(ProcessAutomaton):
    """Try (m+1)-consensus through the PAC face of an (n, m)-PAC.

    Everyone hammers label 1: ``proposeP(v, 1)``; ``decideP(1)``; retry
    on ⊥. Two consecutive proposes on one label upset the PAC forever
    (Algorithm 1, line 2), after which every decide returns ⊥ — the
    upset-flooding run of Claim 5.2.7. Liveness failure: the explorer
    finds the non-deciding loop.
    """

    def __init__(self, pid: ProcessId, value: Value, obj: str = "NMPAC") -> None:
        super().__init__(pid)
        self.value = value
        self.obj = obj

    def initial_state(self) -> Hashable:
        return ("propose",)

    def next_action(self, state: Hashable) -> Action:
        tag = state[0]
        if tag == "propose":
            return Invoke(self.obj, op("proposeP", self.value, 1))
        if tag == "decide":
            return Invoke(self.obj, op("decideP", 1))
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        tag = state[0]
        if tag == "propose":
            return ("decide",)
        assert tag == "decide"
        if response is not BOTTOM:
            return ("decided", response)
        return ("propose",)


class ScanningRacerProcess(ProcessAutomaton):
    """Try n-consensus with a one-winner race object plus registers.

    Shape shared by the queue and test-and-set candidates: announce
    your input in ``R{pid}``, race on a level-2 object; the winner
    decides its own input; a loser *scans* the other announce registers
    and decides the smallest announced value it sees (its own included).
    With two processes the winner's register is the only other one, so
    this is exactly Herlihy's correct protocol; with three processes the
    loser cannot tell *which* racer won, and the deterministic tie-break
    disagrees with the winner on some schedule — the classical "queue
    and test-and-set are at level 2" separation, candidate-ized.

    ``race_obj``/``race_operation``/``win_predicate`` parameterize the
    race (queue dequeue returning "winner", or test_and_set returning 0).
    """

    def __init__(
        self,
        pid: ProcessId,
        value: Value,
        num_processes: int,
        race_obj: str,
        race_operation,
        win_response: Value,
        register_prefix: str = "R",
    ) -> None:
        super().__init__(pid)
        self.value = value
        self.num_processes = num_processes
        self.race_obj = race_obj
        self.race_operation = race_operation
        self.win_response = win_response
        self.register_prefix = register_prefix
        self.others = tuple(
            other for other in range(num_processes) if other != pid
        )

    def initial_state(self) -> Hashable:
        return ("announce",)

    def next_action(self, state: Hashable) -> Action:
        tag = state[0]
        if tag == "announce":
            return Invoke(
                f"{self.register_prefix}{self.pid}", op("write", self.value)
            )
        if tag == "race":
            return Invoke(self.race_obj, self.race_operation)
        if tag == "scan":
            index = state[1]
            return Invoke(
                f"{self.register_prefix}{self.others[index]}", op("read")
            )
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        from ..types import NIL

        tag = state[0]
        if tag == "announce":
            return ("race",)
        if tag == "race":
            if response == self.win_response:
                return ("decided", self.value)
            return ("scan", 0, ())
        assert tag == "scan"
        index, seen = state[1], state[2]
        seen = seen + ((response,) if response is not NIL else ())
        if index + 1 < len(self.others):
            return ("scan", index + 1, seen)
        # A loser adopts an announced value (the winner's, it hopes).
        # With n = 2 the only announced value IS the winner's, so this
        # is Herlihy's correct protocol; with n >= 3 the min tie-break
        # can pick a fellow loser's value.
        if seen:
            return ("decided", min(seen))
        return ("decided", self.value)


# ---------------------------------------------------------------------------
# Candidate factories
# ---------------------------------------------------------------------------


def consensus_via_exhausted_consensus(m: int = 2) -> CandidateSystem:
    """(m+1)-consensus from one m-consensus object: safety failure."""
    n = m + 1
    inputs = tuple(pid % 2 for pid in range(n))
    return CandidateSystem(
        name=f"{n}-consensus from {m}-consensus (decide own on ⊥)",
        objects={"CONS": MConsensusSpec(m)},
        processes=[
            ConsensusViaExhaustedConsensus(pid, inputs[pid]) for pid in range(n)
        ],
        task=ConsensusTask(n),
        inputs=inputs,
        expected_failure="safety",
        notes="The ⊥ receiver decides its own input; schedule it last "
        "with a minority input.",
    )


def consensus_via_strong_sa(n: int = 2) -> CandidateSystem:
    """n-consensus from one strong 2-SA object: safety failure (n >= 2)."""
    inputs = tuple(pid % 2 for pid in range(n))
    return CandidateSystem(
        name=f"{n}-consensus from one 2-SA",
        objects={"SA": StrongSetAgreementSpec(2)},
        processes=[ConsensusViaStrongSA(pid, inputs[pid]) for pid in range(n)],
        task=ConsensusTask(n),
        inputs=inputs,
        expected_failure="safety",
        notes="The 2-SA may answer the two processes with different "
        "members of STATE.",
    )


def dac_via_consensus(n: int = 2, fallback: str = "own") -> CandidateSystem:
    """(n+1)-DAC from one n-consensus object + a register.

    ``fallback='own'`` → safety failure; ``fallback='spin'`` → liveness
    failure (Termination (b) broken in a q-solo run).
    """
    total = n + 1
    inputs = DacDecisionTask.paper_initial_inputs(total)
    processes: List[ProcessAutomaton] = [
        DacViaConsensusProcess(
            pid=pid,
            value=inputs[pid],
            distinguished=(pid == 0),
            fallback=fallback,
        )
        for pid in range(total)
    ]
    return CandidateSystem(
        name=f"{total}-DAC from {n}-consensus (fallback={fallback})",
        objects={"CONS": MConsensusSpec(n), "R0": RegisterSpec()},
        processes=processes,
        task=DacDecisionTask(total, distinguished=0),
        inputs=inputs,
        expected_failure="safety" if fallback == "own" else "liveness",
        notes="Theorem 4.2 says no fallback can work; this one fails "
        f"by {fallback}-path.",
    )


def dac_via_sa_arbiter(n: int = 2) -> CandidateSystem:
    """(n+1)-DAC from n-consensus + 2-SA: the arbiter hope, refuted."""
    total = n + 1
    inputs = DacDecisionTask.paper_initial_inputs(total)
    processes: List[ProcessAutomaton] = [
        DacViaSaArbiterProcess(
            pid=pid, value=inputs[pid], distinguished=(pid == 0)
        )
        for pid in range(total)
    ]
    return CandidateSystem(
        name=f"{total}-DAC from {n}-consensus + 2-SA arbiter",
        objects={"SA": StrongSetAgreementSpec(2), "CONS": MConsensusSpec(n)},
        processes=processes,
        task=DacDecisionTask(total, distinguished=0),
        inputs=inputs,
        expected_failure="safety",
        notes="The ⊥-path decision bypasses the consensus object; the "
        "adversary desynchronizes the SA answers.",
    )


def consensus_via_pac_retry(n: int = 3, m: int = 2) -> CandidateSystem:
    """(m+1)-consensus from an (n, m)-PAC's PAC face: liveness failure.

    This is the Claim 5.2.7 upset-flooding scenario made concrete.
    """
    total = m + 1
    inputs = tuple(pid % 2 for pid in range(total))
    return CandidateSystem(
        name=f"{total}-consensus from ({n},{m})-PAC via PAC retries",
        objects={"NMPAC": CombinedPacSpec(n, m)},
        processes=[
            PacRetryConsensusProcess(pid, inputs[pid]) for pid in range(total)
        ],
        task=ConsensusTask(total),
        inputs=inputs,
        expected_failure="liveness",
        notes="Two consecutive proposes on label 1 upset the PAC; all "
        "subsequent decides return ⊥ forever.",
    )


def consensus_via_queue(n: int = 3) -> CandidateSystem:
    """n-consensus from one pre-loaded queue + registers.

    Correct for n = 2 (Herlihy's protocol); the ``expected_failure``
    field flips accordingly, so the harness can also use the 2-process
    instance as a positive control.
    """
    from ..objects.classic import QueueSpec

    inputs = tuple(pid % 2 for pid in range(n))
    tokens = ("winner",) + tuple(f"loser{i}" for i in range(n - 1))
    objects: Dict[str, SequentialSpec] = {"Q": QueueSpec(initial=tokens)}
    for pid in range(n):
        objects[f"R{pid}"] = RegisterSpec()
    processes: List[ProcessAutomaton] = [
        ScanningRacerProcess(
            pid=pid,
            value=inputs[pid],
            num_processes=n,
            race_obj="Q",
            race_operation=op("dequeue"),
            win_response="winner",
        )
        for pid in range(n)
    ]
    return CandidateSystem(
        name=f"{n}-consensus from queue + registers",
        objects=objects,
        processes=processes,
        task=ConsensusTask(n),
        inputs=inputs,
        expected_failure="none" if n <= 2 else "safety",
        notes="A loser cannot tell which racer won; the scan's "
        "tie-break disagrees with the winner for n >= 3.",
    )


def consensus_via_test_and_set(n: int = 3) -> CandidateSystem:
    """n-consensus from one test-and-set + registers (correct iff n=2)."""
    from ..objects.classic import TestAndSetSpec

    inputs = tuple(pid % 2 for pid in range(n))
    objects: Dict[str, SequentialSpec] = {"TAS": TestAndSetSpec()}
    for pid in range(n):
        objects[f"R{pid}"] = RegisterSpec()
    processes: List[ProcessAutomaton] = [
        ScanningRacerProcess(
            pid=pid,
            value=inputs[pid],
            num_processes=n,
            race_obj="TAS",
            race_operation=op("test_and_set"),
            win_response=0,
        )
        for pid in range(n)
    ]
    return CandidateSystem(
        name=f"{n}-consensus from test-and-set + registers",
        objects=objects,
        processes=processes,
        task=ConsensusTask(n),
        inputs=inputs,
        expected_failure="none" if n <= 2 else "safety",
        notes="Same scanning weakness as the queue candidate — "
        "test-and-set is at level 2.",
    )


def all_candidates() -> List[CandidateSystem]:
    """The default candidate suite for experiments E4/E5/E7/E13.

    Includes two *positive controls* (the 2-process queue and TAS
    instances, which are correct protocols) so the harness's "no
    violation found" answer is itself validated.
    """
    return [
        consensus_via_exhausted_consensus(2),
        consensus_via_strong_sa(2),
        dac_via_consensus(2, fallback="own"),
        dac_via_consensus(2, fallback="spin"),
        dac_via_sa_arbiter(2),
        consensus_via_pac_retry(3, 2),
        consensus_via_queue(2),
        consensus_via_queue(3),
        consensus_via_test_and_set(2),
        consensus_via_test_and_set(3),
    ]
