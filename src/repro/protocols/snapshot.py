"""Wait-free atomic snapshot from plain registers (Afek et al. 1993).

The construction that closes the register level of the hierarchy: an
atomic ``scan``/``update`` object built from single-writer registers
only. Each register ``R{i}`` holds a triple ``(seq, value, view)``:

* ``update(i, v)`` (by process ``i``): perform an *embedded scan*,
  then write ``(seq + 1, v, that scan's view)``;
* ``scan()``: repeatedly *collect* (read all registers). If two
  consecutive collects are identical, return their values — the scan
  "flew between" all updates (a clean double collect linearizes at any
  point between the two collects). Otherwise, any process observed to
  move **twice** must have completed an entire update — and hence an
  entire embedded scan — strictly inside our scan's interval; borrow
  its embedded view, which is a valid snapshot inside our interval.

Wait-freedom: a scan does at most ``n + 2`` collects (after ``n + 2``
collects some process moved twice by pigeonhole); an update is a scan
plus one write.

This is a substrate demonstration — the same
:class:`~repro.protocols.implementation.Implementation` +
linearizability-checker pipeline that validates the paper's Lemma 6.4
and Observation 5.1 implementations validates a genuinely subtle
classical construction (experiment-grade test:
``tests/protocols/test_snapshot.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import InvalidOperationError, SpecificationError
from ..objects.register import RegisterSpec
from ..objects.snapshot import SnapshotSpec
from ..objects.spec import SequentialSpec
from ..runtime.events import Invoke
from ..types import NIL, Operation, ProcessId, Value, op, require
from .implementation import Implementation, OperationProgram

#: Register contents: (sequence number, value, embedded view or None).
_INITIAL_CELL = (0, NIL, None)


class AfekSnapshotImplementation(Implementation):
    """Single-writer snapshot for ``n`` processes from ``n`` registers."""

    def __init__(self, n: int, initial: Value = NIL) -> None:
        require(n >= 1, SpecificationError, f"snapshot needs n >= 1, got {n}")
        self.n = n
        self.initial = initial
        self._target = SnapshotSpec(n, initial)

    def target_spec(self) -> SequentialSpec:
        return self._target

    def base_objects(self) -> Dict[str, SequentialSpec]:
        return {
            f"SNAP_R{i}": RegisterSpec((0, self.initial, None))
            for i in range(self.n)
        }

    # -- coroutine building blocks ------------------------------------------

    def _collect(self) -> OperationProgram:
        cells = []
        for i in range(self.n):
            cell = yield Invoke(f"SNAP_R{i}", op("read"))
            cells.append(cell)
        return tuple(cells)

    def _embedded_scan(self) -> OperationProgram:
        """The scan kernel: double collect with view borrowing."""
        moved: Dict[int, int] = {}
        previous = yield from self._collect()
        # n + 2 attempts suffice; the loop is provably bounded but we
        # keep an explicit guard so a bug fails loudly, not silently.
        for _attempt in range(self.n + 2):
            current = yield from self._collect()
            if current == previous:
                return tuple(cell[1] for cell in current)
            for i in range(self.n):
                if current[i][0] != previous[i][0]:
                    moved[i] = moved.get(i, 0) + 1
                    if moved[i] >= 2:
                        view = current[i][2]
                        if view is None:
                            raise SpecificationError(
                                "double-mover with no embedded view — "
                                "broken invariant"
                            )
                        return view
            previous = current
        raise SpecificationError(
            "snapshot scan exceeded its wait-freedom bound"
        )

    def operation_program(
        self, pid: ProcessId, operation: Operation, memory: Dict[str, Any]
    ) -> OperationProgram:
        if operation.name == "scan":
            view = yield from self._embedded_scan()
            return view
        if operation.name == "update":
            index, value = operation.args
            if index != pid:
                raise InvalidOperationError(
                    f"single-writer snapshot: process {pid} may only update "
                    f"segment {pid}, not {index}"
                )
            view = yield from self._embedded_scan()
            sequence = memory.get("sequence", 0) + 1
            memory["sequence"] = sequence
            yield Invoke(f"SNAP_R{index}", op("write", (sequence, value, view)))
            from ..types import DONE

            return DONE
        raise InvalidOperationError(
            f"snapshot supports scan/update, got {operation}"
        )

    def name(self) -> str:
        return f"Afek-snapshot[{self.n}] from registers"
