"""Wait-free implementations: build one object out of others.

"Object A implements object B" is the relation every theorem in the
paper is about. An :class:`Implementation` packages:

* the **target** sequential spec being implemented;
* the **base objects** the implementation is built from;
* per-operation **programs**: generator coroutines that perform base-
  object steps (yield :class:`~repro.runtime.events.Invoke`, receive
  responses) and return the high-level response.

:func:`run_clients` drives ``n`` client processes, each executing a
workload of target operations through the implementation under an
adversarial scheduler, and records the high-level
:class:`~repro.runtime.history.ConcurrentHistory`. The verdict —
"this really is an implementation" — comes from running the
linearizability checker on that history against the target spec
(:func:`check_implementation`), exactly Herlihy & Wing's correctness
condition [11].
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Generator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..objects.base import ResponseOracle
from ..objects.spec import SequentialSpec
from ..runtime.events import Invoke
from ..runtime.history import ConcurrentHistory, RunHistory
from ..runtime.process import GeneratorProcess
from ..runtime.scheduler import Scheduler
from ..runtime.system import System
from ..types import Operation, ProcessId, Value

#: The coroutine type of one high-level operation.
OperationProgram = Generator[Invoke, Value, Value]


class Implementation(ABC):
    """A wait-free implementation of ``target_spec`` from base objects."""

    @abstractmethod
    def target_spec(self) -> SequentialSpec:
        """The sequential spec the implementation must linearize to."""

    @abstractmethod
    def base_objects(self) -> Dict[str, SequentialSpec]:
        """Fresh base-object specs for one instance of the target."""

    @abstractmethod
    def operation_program(
        self, pid: ProcessId, operation: Operation, memory: Dict[str, Any]
    ) -> OperationProgram:
        """The coroutine implementing one high-level operation.

        ``memory`` is the per-process scratchpad that persists across
        the process's operations (local logs, sequence counters).
        """

    def name(self) -> str:
        return type(self).__name__


@dataclass
class ClientRunResult:
    """Everything one harness run produced."""

    history: ConcurrentHistory
    run: RunHistory
    responses: Dict[ProcessId, List[Value]]


def run_clients(
    implementation: Implementation,
    workloads: Mapping[ProcessId, Sequence[Operation]],
    scheduler: Optional[Scheduler] = None,
    oracle: Optional[ResponseOracle] = None,
    max_steps: int = 100_000,
) -> ClientRunResult:
    """Run client processes through ``implementation`` and record the
    high-level concurrent history.

    ``workloads[pid]`` is the sequence of target operations process
    ``pid`` performs, one after another. Each operation's invocation
    and response events are recorded as they happen relative to the
    interleaving the scheduler produces.
    """
    history = ConcurrentHistory()
    responses: Dict[ProcessId, List[Value]] = {
        pid: [] for pid in workloads
    }

    def client(pid: ProcessId, operations: Sequence[Operation]):
        memory: Dict[str, Any] = {}

        def program(my_pid: ProcessId):
            for operation in operations:
                op_id = history.invoke(my_pid, operation)
                response = yield from implementation.operation_program(
                    my_pid, operation, memory
                )
                history.respond(op_id, response)
                # ``responses`` is observer-side measurement state (what
                # each client saw, for the caller) — not protocol shared
                # state, so the R002 discipline does not apply to it.
                responses[my_pid].append(response)  # repro: noqa[R002] harness recording
            return None

        return GeneratorProcess(pid, program)

    processes = [client(pid, workloads[pid]) for pid in sorted(workloads)]
    system = System(implementation.base_objects(), processes, oracle=oracle)
    run = system.run(scheduler=scheduler, max_steps=max_steps)
    return ClientRunResult(history=history, run=run, responses=responses)


def check_implementation(
    implementation: Implementation,
    workloads: Mapping[ProcessId, Sequence[Operation]],
    scheduler: Optional[Scheduler] = None,
    oracle: Optional[ResponseOracle] = None,
    max_steps: int = 100_000,
):
    """Run clients and linearizability-check the resulting history.

    Returns ``(verdict, result)`` where ``verdict`` is a
    :class:`~repro.analysis.linearizability.LinearizabilityVerdict`.
    """
    from ..analysis.linearizability import LinearizabilityChecker

    result = run_clients(
        implementation, workloads, scheduler, oracle, max_steps
    )
    checker = LinearizabilityChecker(implementation.target_spec())
    verdict = checker.check(result.history)
    return verdict, result


class RedirectImplementation(Implementation):
    """An implementation where every target operation is exactly one
    base-object step (an *operation redirect*).

    This is the shape of all three Observation 5.1 implementations and
    of Lemma 6.4's: construct with the target spec, the base-object
    table, and a routing function ``route(operation) -> (obj_name,
    base_operation)``. Single-step redirects of atomic base objects are
    trivially linearizable — and we *check* that anyway.
    """

    def __init__(
        self,
        target: SequentialSpec,
        bases: Dict[str, SequentialSpec],
        route,
        label: str = "redirect",
    ) -> None:
        self._target = target
        self._bases = bases
        self._route = route
        self._label = label

    def target_spec(self) -> SequentialSpec:
        return self._target

    def base_objects(self) -> Dict[str, SequentialSpec]:
        return dict(self._bases)

    def operation_program(
        self, pid: ProcessId, operation: Operation, memory: Dict[str, Any]
    ) -> OperationProgram:
        obj_name, base_operation = self._route(operation)
        response = yield Invoke(obj_name, base_operation)
        return response

    def name(self) -> str:
        return self._label
