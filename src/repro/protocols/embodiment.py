"""Implementations for Observation 5.1 and Lemma 6.4.

Observation 5.1 (Section 5):

  (a) an ``(n, m)``-PAC can be implemented from an ``n``-PAC plus an
      ``m``-consensus object — :func:`combined_pac_from_parts`;
  (b) an ``(n, m)``-PAC implements an ``n``-PAC —
      :func:`pac_from_combined`;
  (c) an ``(n, m)``-PAC implements an ``m``-consensus object —
      :func:`consensus_from_combined`.

Lemma 6.4 (Section 6): ``O'_n`` can be implemented from ``n``-consensus
objects and 2-SA objects — :func:`on_prime_from_consensus_and_sa`. The
level-1 member ``(n_1, 1)``-SA is served by an ``n``-consensus object
(``n_1 = n`` by Theorem 5.3); every level-``k`` member with ``k >= 2``
is served by its *own* strong 2-SA object (a 2-SA answers any number of
processes with at most two of the first proposals — a fortiori a valid
``(n_k, k)``-set-agreement behaviour).

All four are operation redirects
(:class:`~repro.protocols.implementation.RedirectImplementation`);
experiments E8 and E9 validate them with the linearizability checker
under adversarial schedules — the paper asserts these as immediate, we
check them anyway.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import InvalidOperationError, SpecificationError
from ..objects.consensus import MConsensusSpec
from ..objects.spec import SequentialSpec
from ..core.combined import CombinedPacSpec
from ..core.pac import NPacSpec
from ..core.separation import SetAgreementBundleSpec, make_on_prime
from ..core.set_agreement import StrongSetAgreementSpec
from ..types import Operation, op, require
from .implementation import RedirectImplementation


def combined_pac_from_parts(n: int, m: int) -> RedirectImplementation:
    """Observation 5.1(a): ``(n, m)``-PAC from ``n``-PAC + ``m``-consensus."""

    def route(operation: Operation) -> Tuple[str, Operation]:
        if operation.name == "proposeC":
            return "C", op("propose", *operation.args)
        if operation.name == "proposeP":
            return "P", op("propose", *operation.args)
        if operation.name == "decideP":
            return "P", op("decide", *operation.args)
        raise InvalidOperationError(
            f"(n,m)-PAC does not support {operation.name!r}"
        )

    return RedirectImplementation(
        target=CombinedPacSpec(n, m),
        bases={"P": NPacSpec(n), "C": MConsensusSpec(m)},
        route=route,
        label=f"({n},{m})-PAC from {n}-PAC + {m}-consensus",
    )


def pac_from_combined(n: int, m: int) -> RedirectImplementation:
    """Observation 5.1(b): ``n``-PAC from an ``(n, m)``-PAC."""

    def route(operation: Operation) -> Tuple[str, Operation]:
        if operation.name == "propose":
            return "NM", op("proposeP", *operation.args)
        if operation.name == "decide":
            return "NM", op("decideP", *operation.args)
        raise InvalidOperationError(
            f"n-PAC does not support {operation.name!r}"
        )

    return RedirectImplementation(
        target=NPacSpec(n),
        bases={"NM": CombinedPacSpec(n, m)},
        route=route,
        label=f"{n}-PAC from ({n},{m})-PAC",
    )


def consensus_from_combined(n: int, m: int) -> RedirectImplementation:
    """Observation 5.1(c): ``m``-consensus from an ``(n, m)``-PAC."""

    def route(operation: Operation) -> Tuple[str, Operation]:
        if operation.name == "propose":
            return "NM", op("proposeC", *operation.args)
        raise InvalidOperationError(
            f"m-consensus does not support {operation.name!r}"
        )

    return RedirectImplementation(
        target=MConsensusSpec(m),
        bases={"NM": CombinedPacSpec(n, m)},
        route=route,
        label=f"{m}-consensus from ({n},{m})-PAC",
    )


def bundle_from_consensus_and_sa(
    bundle: SetAgreementBundleSpec,
) -> RedirectImplementation:
    """Implement an SA bundle from consensus + 2-SA objects (Lemma 6.4).

    Level 1 routes to an ``n_1``-consensus object; each level ``k >= 2``
    routes to its own strong 2-SA object.
    """
    levels = bundle.levels
    n1 = levels[0]
    require(
        isinstance(n1, int),
        SpecificationError,
        "level 1 of the bundle must have a finite port count (it is a "
        "consensus number)",
    )
    bases: Dict[str, SequentialSpec] = {"CONS1": MConsensusSpec(n1)}
    for k in range(2, len(levels) + 1):
        bases[f"SA{k}"] = StrongSetAgreementSpec(2)

    def route(operation: Operation) -> Tuple[str, Operation]:
        if operation.name != "propose" or len(operation.args) != 2:
            raise InvalidOperationError(
                f"SA bundle supports only propose(v, k), got {operation}"
            )
        value, level = operation.args
        if level == 1:
            return "CONS1", op("propose", value)
        return f"SA{level}", op("propose", value)

    return RedirectImplementation(
        target=bundle,
        bases=bases,
        route=route,
        label=f"Lemma 6.4: {bundle.kind} from {n1}-consensus + 2-SA",
    )


def on_prime_from_consensus_and_sa(
    n: int, levels: int = 4
) -> RedirectImplementation:
    """Lemma 6.4 for the paper's own object: ``O'_n`` from
    ``n``-consensus + 2-SA objects."""
    return bundle_from_consensus_and_sa(make_on_prime(n, levels))
