"""Herlihy's universal construction — the paper's background theorem.

Section 1 recalls Herlihy's result: instances of any object with
consensus number ``n``, plus registers, wait-free implement *every*
object shared by up to ``n`` processes [10]. This module implements the
construction with the log/helping scheme:

* each process announces its pending operation in its own **announce
  register** ``ANN{pid}``;
* the object's history is a growing **log** of operations, one
  ``n``-consensus object ``CONS{slot}`` per log slot deciding which
  announced operation fills that slot;
* before proposing at slot ``s``, a process reads the announce register
  of the *preferred* process ``s mod n`` and proposes that process's
  pending operation if it is not yet logged — the classical helping
  rule that makes the construction wait-free (your operation is in the
  log at latest by your next preferred slot, so within ``O(n)`` slots);
* a process computes its operation's response by replaying the target
  spec over the log prefix up to its own entry. All processes replay
  the same log, so responses are consistent — this requires a
  *deterministic* target spec, which the constructor enforces.

Experiment E12 builds queues, registers, PAC objects and more out of
consensus + registers and linearizability-checks the results.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..errors import SpecificationError
from ..objects.consensus import MConsensusSpec
from ..objects.register import RegisterSpec
from ..objects.spec import SequentialSpec
from ..runtime.events import Invoke
from ..types import BOTTOM, NIL, Operation, ProcessId, Value, op, require
from .implementation import Implementation, OperationProgram


class UniversalConstruction(Implementation):
    """Wait-free universal implementation of ``target`` for ``n`` processes.

    ``max_operations`` bounds the total number of high-level operations
    across all processes (it sizes the consensus-object array; the
    construction itself is unbounded, the simulation needs a finite
    object table). One consensus object is provisioned per potential
    log slot plus helping slack.
    """

    def __init__(
        self,
        target: SequentialSpec,
        n: int,
        max_operations: int = 64,
        helping: bool = True,
    ) -> None:
        require(n >= 1, SpecificationError, f"n must be >= 1, got {n}")
        require(
            target.is_deterministic,
            SpecificationError,
            f"the universal construction replays the log locally, which "
            f"requires a deterministic target spec; {target.kind} is "
            f"nondeterministic",
        )
        self.target = target
        self.n = n
        # Helping guarantees an operation lands within n slots of its
        # announcement, so this is a safe slot budget.
        self.max_slots = max_operations + n + 1
        self.max_operations = max_operations
        # ``helping=False`` disables the announce-read/adopt rule — the
        # ablation knob: without helping the construction stays
        # linearizable but loses wait-freedom (an adversary can defer
        # one process's operation for as long as the others have work).
        self.helping = helping

    def target_spec(self) -> SequentialSpec:
        return self.target

    def base_objects(self) -> Dict[str, SequentialSpec]:
        objects: Dict[str, SequentialSpec] = {}
        for pid in range(self.n):
            objects[f"ANN{pid}"] = RegisterSpec(NIL)
        for slot in range(self.max_slots):
            objects[f"CONS{slot}"] = MConsensusSpec(self.n)
        return objects

    def operation_program(
        self, pid: ProcessId, operation: Operation, memory: Dict[str, Any]
    ) -> OperationProgram:
        sequence = memory.get("sequence", 0)
        memory["sequence"] = sequence + 1
        my_entry: Tuple = (pid, sequence, operation)
        log = memory.setdefault("log", [])
        logged = memory.setdefault("logged", set())

        yield Invoke(f"ANN{pid}", op("write", my_entry))

        while my_entry not in logged:
            slot = len(log)
            if slot >= self.max_slots:
                raise SpecificationError(
                    f"universal construction ran out of its {self.max_slots} "
                    f"slots; raise max_operations"
                )
            proposal = my_entry
            if self.helping:
                preferred = slot % self.n
                candidate = yield Invoke(f"ANN{preferred}", op("read"))
                if (
                    candidate is not NIL
                    and candidate not in logged
                    and candidate != my_entry
                ):
                    proposal = candidate
            winner = yield Invoke(f"CONS{slot}", op("propose", proposal))
            if winner is BOTTOM:
                raise SpecificationError(
                    f"slot {slot} consensus object exhausted — more than "
                    f"{self.n} processes proposed at one slot"
                )
            log.append(winner)
            logged.add(winner)

        # Replay the log deterministically up to our own entry.
        state = self.target.initial_state()
        response: Value = None
        for entry in log:
            state, entry_response = self.target.apply(state, entry[2])
            if entry == my_entry:
                response = entry_response
                break
        return response

    def name(self) -> str:
        return f"universal[{self.target.kind} @ {self.n} procs]"
