"""Algorithm 2: solving the ``n``-DAC problem with a single ``n``-PAC.

The processes are numbered ``0 .. n-1`` and use PAC labels
``pid + 1 ∈ [1..n]``. The distinguished process performs one
propose/decide pair and aborts on ⊥ (lines 1–5); every other process
retries its propose/decide pair until the decide returns a non-⊥ value
(lines 6–11).

Theorem 4.1 says this solves ``n``-DAC; experiment E3 verifies it by
exhaustive bounded exploration (all schedules × all binary inputs for
small ``n``) and by randomized adversarial simulation for larger ``n``.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from ..errors import SpecificationError
from ..types import BOTTOM, ProcessId, Value, op, require
from ..runtime.events import Abort, Action, Decide, Invoke
from ..runtime.process import ProcessAutomaton
from ..core.pac import permute_pac_state

#: Local-state tags for the Algorithm 2 automaton.
_TO_PROPOSE = "to_propose"
_TO_DECIDE = "to_decide"
_DECIDED = "decided"
_ABORTED = "aborted"


class Algorithm2Process(ProcessAutomaton):
    """One process of Algorithm 2.

    ``pid`` — the process id (port ``pid + 1`` on the PAC);
    ``value`` — the process's binary input;
    ``distinguished`` — True for the paper's ``p`` (abort on ⊥);
    ``pac`` — the name of the shared ``n``-PAC object.

    Local states: ``("to_propose",)`` → ``("to_decide",)`` →
    ``("decided", v)`` or ``("aborted",)`` or back to propose.
    """

    def __init__(
        self,
        pid: ProcessId,
        value: Value,
        distinguished: bool,
        pac: str = "PAC",
    ) -> None:
        super().__init__(pid)
        self.value = value
        self.distinguished = distinguished
        self.pac = pac
        self.label = pid + 1

    def initial_state(self) -> Hashable:
        return (_TO_PROPOSE,)

    def next_action(self, state: Hashable) -> Action:
        tag = state[0]
        if tag == _TO_PROPOSE:
            return Invoke(self.pac, op("propose", self.value, self.label))
        if tag == _TO_DECIDE:
            return Invoke(self.pac, op("decide", self.label))
        if tag == _DECIDED:
            return Decide(state[1])
        assert tag == _ABORTED
        return Abort()

    def transition(self, state: Hashable, response: Value) -> Hashable:
        tag = state[0]
        if tag == _TO_PROPOSE:
            return (_TO_DECIDE,)
        assert tag == _TO_DECIDE
        if response is not BOTTOM:
            return (_DECIDED, response)
        if self.distinguished:
            return (_ABORTED,)
        return (_TO_PROPOSE,)


def algorithm2_processes(
    inputs: Tuple[Value, ...],
    distinguished: ProcessId = 0,
    pac: str = "PAC",
) -> List[Algorithm2Process]:
    """Instantiate all ``n`` Algorithm 2 processes for ``inputs``.

    ``inputs[i]`` is process ``i``'s binary input; ``distinguished``
    selects the paper's ``p``.
    """
    n = len(inputs)
    require(n >= 2, SpecificationError, f"n-DAC needs n >= 2 processes, got {n}")
    require(
        0 <= distinguished < n,
        SpecificationError,
        f"distinguished pid {distinguished} out of range",
    )
    return [
        Algorithm2Process(
            pid=pid,
            value=inputs[pid],
            distinguished=(pid == distinguished),
            pac=pac,
        )
        for pid in range(n)
    ]


def algorithm2_symmetry(
    inputs: Tuple[Value, ...],
    distinguished: ProcessId = 0,
    pac: str = "PAC",
):
    """The process symmetry of an Algorithm 2 instance, or None.

    Non-distinguished processes with equal inputs are interchangeable:
    their automata differ only in the PAC label (``pid + 1``), and
    :func:`~repro.core.pac.permute_pac_state` relabels the PAC state to
    match (the spec-automorphism obligation of
    :mod:`repro.analysis.symmetry`). The distinguished process is never
    grouped — its abort branch makes it observably different.

    Returns None when no two processes are interchangeable (then
    reduction cannot shrink anything).
    """
    from ..analysis.symmetry import ProcessSymmetry, groups_by_input

    groups = groups_by_input(inputs, exclude=(distinguished,))
    if not groups:
        return None
    return ProcessSymmetry(
        len(inputs), groups, object_permuters={pac: permute_pac_state}
    )
