"""k-set agreement protocols — the constructive power lower bounds.

Every certified lower bound emitted by :mod:`repro.core.power` is backed
by a protocol in this module:

* :func:`trivial_processes` — ``k``-set agreement among ``n <= k``
  processes with *nothing*: everyone decides its own input;
* :func:`group_partition_processes` — ``k``-set agreement among
  ``m · k`` processes from ``k`` ``m``-consensus objects (partition into
  ``k`` groups; each group runs consensus on its own object). This is
  the protocol behind ``n_k >= m·k`` for ``m``-consensus and for the
  consensus face of ``(n, m)``-PAC objects;
* :class:`StrongSaProcess` — ``k``-set agreement (``k >= c``) among
  *any* number of processes from one strong ``c``-SA object;
* :class:`NkSaProcess` — ``k``-set agreement among up to ``n_k``
  processes from one ``(n_k, k)``-SA object (the defining use);
* :class:`BundleProcess` — the same through an ``O'_n`` bundle's
  ``PROPOSE(v, k)`` face (how ``O'_n`` realizes each component of its
  set agreement power — experiment E10's grid uses this).
"""

from __future__ import annotations

from typing import Hashable, List, Sequence

from ..errors import SpecificationError
from ..types import ProcessId, Value, op, require
from ..runtime.events import Action, Decide, Invoke
from ..runtime.process import FunctionalAutomaton, ProcessAutomaton


class _ProposeDecideProcess(ProcessAutomaton):
    """Shared shape: one propose on one object, then decide the response."""

    def __init__(self, pid: ProcessId, value: Value, obj: str, operation) -> None:
        super().__init__(pid)
        self.value = value
        self.obj = obj
        self._operation = operation

    def initial_state(self) -> Hashable:
        return ("propose",)

    def next_action(self, state: Hashable) -> Action:
        if state[0] == "propose":
            return Invoke(self.obj, self._operation)
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        return ("decided", response)


class StrongSaProcess(_ProposeDecideProcess):
    """Decide a strong ``c``-SA object's answer to your proposal.

    At most ``c`` distinct responses ever leave the object, and all are
    proposed values — so this solves ``k``-set agreement for any
    ``k >= c`` among any number of processes (Section 4).
    """

    def __init__(self, pid: ProcessId, value: Value, obj: str = "SA") -> None:
        super().__init__(pid, value, obj, op("propose", value))


class NkSaProcess(_ProposeDecideProcess):
    """Decide an ``(n, k)``-SA object's answer (one propose per process)."""

    def __init__(self, pid: ProcessId, value: Value, obj: str = "NKSA") -> None:
        super().__init__(pid, value, obj, op("propose", value))


class BundleProcess(_ProposeDecideProcess):
    """Decide an SA-bundle's level-``k`` answer: ``PROPOSE(v, k)``.

    This is how ``O'_n`` + registers solves ``k``-set agreement among
    ``n_k`` processes — the defining property of the embodiment object.
    """

    def __init__(
        self, pid: ProcessId, value: Value, level: int, obj: str = "OPRIME"
    ) -> None:
        require(level >= 1, SpecificationError, f"level must be >= 1, got {level}")
        super().__init__(pid, value, obj, op("propose", value, level))
        self.level = level


class GroupConsensusProcess(ProcessAutomaton):
    """One participant of the group-partition protocol.

    Process ``pid`` belongs to group ``pid // m`` and proposes to that
    group's consensus object; it decides the response. With ``k`` groups
    of ``m``, at most ``k`` distinct values are decided, each some group
    member's input — ``k``-set agreement among ``m·k`` processes.
    """

    def __init__(
        self,
        pid: ProcessId,
        value: Value,
        group_size: int,
        obj_prefix: str = "CONS",
    ) -> None:
        super().__init__(pid)
        require(group_size >= 1, SpecificationError, "group size must be >= 1")
        self.value = value
        self.group = pid // group_size
        self.obj = f"{obj_prefix}{self.group}"

    def initial_state(self) -> Hashable:
        return ("propose",)

    def next_action(self, state: Hashable) -> Action:
        if state[0] == "propose":
            return Invoke(self.obj, op("propose", self.value))
        return Decide(state[1])

    def transition(self, state: Hashable, response: Value) -> Hashable:
        return ("decided", response)


def trivial_processes(inputs: Sequence[Value]) -> List[ProcessAutomaton]:
    """Everyone decides its own input: k-set agreement for ``n <= k``."""

    def make(pid: ProcessId, value: Value) -> FunctionalAutomaton:
        return FunctionalAutomaton(
            pid=pid,
            initial="done",
            action=lambda _state, v=value: Decide(v),
            update=lambda state, _response: state,
        )

    return [make(pid, value) for pid, value in enumerate(inputs)]


def group_partition_processes(
    inputs: Sequence[Value],
    group_size: int,
    obj_prefix: str = "CONS",
) -> List[GroupConsensusProcess]:
    """Instantiate the group-partition protocol over ``inputs``.

    With ``len(inputs) = m·k`` and ``group_size = m`` this solves
    ``k``-set agreement using objects ``CONS0 .. CONS{k-1}`` (each an
    ``m``-consensus spec — see :func:`group_partition_objects`).
    """
    return [
        GroupConsensusProcess(pid, value, group_size, obj_prefix)
        for pid, value in enumerate(inputs)
    ]


def group_partition_objects(
    num_processes: int, group_size: int, obj_prefix: str = "CONS"
) -> dict:
    """Consensus objects for :func:`group_partition_processes`."""
    from ..objects.consensus import MConsensusSpec

    groups = (num_processes + group_size - 1) // group_size
    return {
        f"{obj_prefix}{g}": MConsensusSpec(group_size) for g in range(groups)
    }


def strong_sa_processes(
    inputs: Sequence[Value], obj: str = "SA"
) -> List[StrongSaProcess]:
    """Instantiate :class:`StrongSaProcess` per input."""
    return [StrongSaProcess(pid, value, obj) for pid, value in enumerate(inputs)]


def bundle_processes(
    inputs: Sequence[Value], level: int, obj: str = "OPRIME"
) -> List[BundleProcess]:
    """Instantiate :class:`BundleProcess` per input at one bundle level."""
    return [
        BundleProcess(pid, value, level, obj) for pid, value in enumerate(inputs)
    ]


def collection_partition(
    inputs: Sequence[Value],
    plan: Sequence[tuple],
) -> tuple:
    """Set-consensus *collections*: mixed groups of consensus and SA.

    The paper's discussion (and [7], which it refutes a conjecture of)
    concerns collections of set agreement capabilities. This builder
    partitions the processes into groups, each served by its own
    object, and returns ``(objects, processes, k_total)`` where
    ``k_total`` bounds the number of distinct decisions:

    * ``("consensus", m)`` — the next ``m`` processes share one
      ``m``-consensus object (contributes 1 decision value);
    * ``("strong_sa", c, size)`` — the next ``size`` processes share
      one strong ``c``-SA object (contributes at most ``c`` values).

    The plan must cover ``len(inputs)`` processes exactly. The result
    solves ``k_total``-set agreement among all of them — model-checked
    in ``tests/protocols/test_set_agreement_protocols.py``.
    """
    from ..errors import SpecificationError
    from ..objects.consensus import MConsensusSpec
    from ..core.set_agreement import StrongSetAgreementSpec

    objects: dict = {}
    processes: List[ProcessAutomaton] = []
    cursor = 0
    k_total = 0
    for index, group in enumerate(plan):
        kind = group[0]
        if kind == "consensus":
            _kind, m = group
            name = f"COLL{index}_CONS"
            objects[name] = MConsensusSpec(m)
            members = range(cursor, cursor + m)
            k_total += 1
            for pid in members:
                processes.append(
                    _ProposeDecideProcess(
                        pid, inputs[pid], name, op("propose", inputs[pid])
                    )
                )
            cursor += m
        elif kind == "strong_sa":
            _kind, c, size = group
            name = f"COLL{index}_SA"
            objects[name] = StrongSetAgreementSpec(c)
            members = range(cursor, cursor + size)
            k_total += c
            for pid in members:
                processes.append(
                    StrongSaProcess(pid, inputs[pid], obj=name)
                )
            cursor += size
        else:
            raise SpecificationError(f"unknown group kind {kind!r}")
    if cursor != len(inputs):
        raise SpecificationError(
            f"plan covers {cursor} processes, inputs have {len(inputs)}"
        )
    return objects, processes, k_total
