"""Core value types shared across the library.

The paper's objects use a handful of special values:

* ``NIL`` — the "no value" marker inside object state (Algorithm 1 uses
  it for the proposal array ``V``, the last-label variable ``L``, and
  the consensus value ``val``).
* ``BOTTOM`` (⊥) — the special response returned by decide operations on
  an upset ``n``-PAC object, by ``m``-consensus objects after their
  ``m``-th propose, and by port-limited set agreement objects.
* ``DONE`` — the response of every ``PROPOSE`` on an ``n``-PAC object.
* ``ABORT`` — the abort outcome of the distinguished process in the
  ``n``-DAC problem.

They are module-level singletons so that identity comparison (``is``)
works across the whole library, and they are hashable so that they can
live inside frozen object states that the model checker memoizes.

Processes are identified by small integers (``ProcessId``); ``n``-PAC
labels are integers in ``[1..n]`` (``Label``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Tuple


class _Sentinel:
    """A named singleton used for the paper's special values.

    Instances compare equal only to themselves, hash by name, survive
    ``copy.deepcopy`` as the same identity, and print as their symbol.
    """

    __slots__ = ("_name", "_hash")

    def __init__(self, name: str) -> None:
        self._name = name
        # Sentinels sit inside nearly every object state the explorer
        # hashes; precompute once instead of re-hashing the name tuple
        # on every container hash.
        self._hash = hash(("repro.sentinel", name))

    def __repr__(self) -> str:
        return self._name

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other

    def __copy__(self) -> "_Sentinel":
        return self

    def __deepcopy__(self, memo: dict) -> "_Sentinel":
        return self

    def __reduce__(self):
        return (_lookup_sentinel, (self._name,))


#: "no value" marker used inside object states (Algorithm 1's NIL).
NIL = _Sentinel("NIL")

#: The special response ⊥ (paper notation) — upset PAC decides,
#: exhausted m-consensus objects, and over-subscribed SA objects.
BOTTOM = _Sentinel("⊥")

#: The response of every PROPOSE operation on an n-PAC object.
DONE = _Sentinel("done")

#: The abort outcome available to the distinguished n-DAC process.
ABORT = _Sentinel("ABORT")

_SENTINELS = {s._name: s for s in (NIL, BOTTOM, DONE, ABORT)}


def _lookup_sentinel(name: str) -> _Sentinel:
    """Resolve a sentinel by name (pickle support)."""
    return _SENTINELS[name]


#: Type aliases used throughout the library.
ProcessId = int
Label = int
Value = Hashable


@dataclass(frozen=True)
class Operation:
    """A single invocation on a shared object: a name plus arguments.

    Operations are immutable values: the same ``Operation`` instance can
    be replayed against a :class:`~repro.objects.spec.SequentialSpec`
    from many different states (the linearizability checker does exactly
    that).

    >>> Operation("propose", (1, 2))
    propose(1, 2)
    """

    name: str
    args: Tuple[Value, ...] = field(default=())

    def __hash__(self) -> int:
        # Operations key the explorer's response caches; hash the
        # (name, args) pair once per instance.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            digest = hash((self.name, self.args))
            object.__setattr__(self, "_hash", digest)
            return digest

    def __getstate__(self) -> dict:
        # Never pickle the cached hash: it is PYTHONHASHSEED-dependent
        # and would be stale in any other interpreter (worker processes,
        # the persistent exploration cache).
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __repr__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({rendered})"


def op(name: str, *args: Value) -> Operation:
    """Convenience constructor for :class:`Operation`.

    >>> op("write", 7)
    write(7)
    >>> op("read")
    read()
    """
    return Operation(name, tuple(args))


def require(condition: bool, exc_type: type, message: str) -> None:
    """Raise ``exc_type(message)`` unless ``condition`` holds.

    A tiny guard helper that keeps object constructors and operation
    validators flat (early-exit style per the style guide).
    """
    if not condition:
        raise exc_type(message)


def is_special(value: Any) -> bool:
    """Return True if ``value`` is one of the reserved special values.

    The paper assumes processes never *propose* the special values
    (footnote 4); object specs use this to validate proposals.
    """
    return isinstance(value, _Sentinel)
