"""Random operation-sequence generators for spec-level experiments.

The PAC experiments (E1, E2) quantify over *operation histories* rather
than schedules: Algorithm 1 is a sequential object, so its behaviour is
fully exercised by feeding it operation sequences. These generators
produce them:

* :func:`random_pac_history` — a random mix of proposes/decides over
  the label space (mostly-legal or fully random, tunable);
* :func:`legal_pac_history` — guaranteed-legal histories (alternating
  per label);
* :func:`all_pac_histories` — exhaustive enumeration up to a length
  (for the small exact sweeps).
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Sequence, Tuple

from ..types import Operation, op


def pac_operation_space(n: int, values: Sequence = (0, 1)) -> List[Operation]:
    """Every distinct PAC operation over ``n`` labels and ``values``."""
    operations: List[Operation] = []
    for label in range(1, n + 1):
        for value in values:
            operations.append(op("propose", value, label))
        operations.append(op("decide", label))
    return operations


def random_pac_history(
    n: int,
    length: int,
    seed: int = 0,
    legal_bias: float = 0.0,
    values: Sequence = (0, 1),
) -> List[Operation]:
    """A random PAC history of ``length`` operations.

    ``legal_bias`` in [0, 1] is the probability that each operation is
    chosen to *keep* the history legal (1.0 → always legal); the
    remainder are drawn uniformly from the whole operation space,
    producing upsets.
    """
    rng = random.Random(seed)
    space = pac_operation_space(n, values)
    expecting_propose = {label: True for label in range(1, n + 1)}
    history: List[Operation] = []
    for _ in range(length):
        if rng.random() < legal_bias:
            label = rng.randint(1, n)
            if expecting_propose[label]:
                operation = op("propose", rng.choice(tuple(values)), label)
            else:
                operation = op("decide", label)
        else:
            operation = rng.choice(space)
        label = (
            operation.args[1]
            if operation.name == "propose"
            else operation.args[0]
        )
        if operation.name == "propose":
            expecting_propose[label] = False
        else:
            expecting_propose[label] = True
        history.append(operation)
    return history


def legal_pac_history(
    n: int, rounds: int, seed: int = 0, values: Sequence = (0, 1)
) -> List[Operation]:
    """A guaranteed-legal history: per-label propose/decide alternation,
    interleaved across labels in random order."""
    rng = random.Random(seed)
    history: List[Operation] = []
    pending: List[int] = []
    for _ in range(rounds):
        label = rng.randint(1, n)
        if label in pending:
            history.append(op("decide", label))
            pending.remove(label)
        else:
            history.append(op("propose", rng.choice(tuple(values)), label))
            pending.append(label)
    return history


def all_pac_histories(
    n: int, max_length: int, values: Sequence = (0,)
) -> Iterator[Tuple[Operation, ...]]:
    """Exhaustively enumerate PAC histories up to ``max_length``.

    With the default single-value domain the count is
    ``(2n)^L`` summed over lengths — keep ``n`` and ``max_length``
    small (the E1/E2 exact sweeps use n=2, L=6).
    """
    space = pac_operation_space(n, values)
    for length in range(max_length + 1):
        yield from itertools.product(space, repeat=length)
