"""Interference adversaries: tunable contention against PAC pairs.

The abortable behaviour the n-PAC simulates surfaces exactly when an
operation lands *between* a propose and its matching decide. The
:class:`InterferenceScheduler` makes that dial explicit: whenever the
target process has a propose/decide pair in flight, it interposes a
rival step with probability ``intensity`` — so ``intensity = 0`` is a
clean fair run and ``intensity = 1`` is the maximal-contention
adversary of the E3 alternation tests. Experiment E17 sweeps the dial
and measures abort/retry dynamics.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..runtime.scheduler import RoundRobinScheduler, Scheduler
from ..types import ProcessId


class InterferenceScheduler(Scheduler):
    """Interpose rivals between the target's consecutive steps.

    ``target`` — the process whose propose/decide pairs we attack;
    ``intensity`` — probability of interposing a rival immediately
    after each target step; rivals are chosen round-robin among the
    other enabled processes.
    """

    def __init__(
        self,
        target: ProcessId,
        intensity: float,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {intensity}")
        self.target = target
        self.intensity = intensity
        self._rng = random.Random(seed)
        self._fallback = RoundRobinScheduler()
        self._interpose_next = False

    def choose(self, enabled: Sequence[ProcessId], step_index: int) -> ProcessId:
        rivals = [pid for pid in enabled if pid != self.target]
        if self.target not in enabled:
            return self._fallback.choose(enabled, step_index)
        if not rivals:
            return self.target
        if self._interpose_next:
            self._interpose_next = False
            return self._fallback.choose(rivals, step_index)
        # Schedule the target; maybe interpose a rival right after.
        self._interpose_next = self._rng.random() < self.intensity
        return self.target
