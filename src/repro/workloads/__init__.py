"""Workload generators: adversary suites, operation histories, client workloads."""

from .generators import (
    bundle_workloads,
    counter_workloads,
    pac_workloads,
    queue_workloads,
    register_workloads,
    snapshot_workloads,
)
from .interference import InterferenceScheduler
from .histories import (
    all_pac_histories,
    legal_pac_history,
    pac_operation_space,
    random_pac_history,
)
from .schedules import adversary_suite, exhaustive_schedules, random_schedulers

__all__ = [
    "InterferenceScheduler",
    "adversary_suite",
    "bundle_workloads",
    "counter_workloads",
    "pac_workloads",
    "queue_workloads",
    "register_workloads",
    "snapshot_workloads",
    "all_pac_histories",
    "exhaustive_schedules",
    "legal_pac_history",
    "pac_operation_space",
    "random_pac_history",
    "random_schedulers",
]
