"""Random client workloads for implementation testing.

The implementation harness (:mod:`repro.protocols.implementation`)
takes per-process operation sequences; these generators produce them
for each target object family, so the linearizability experiments can
sweep random workloads rather than the handful of hand-written ones:

* :func:`queue_workloads` — mixed enqueue/dequeue traffic;
* :func:`register_workloads` — write/read traffic;
* :func:`counter_workloads` — fetch-and-add bursts;
* :func:`snapshot_workloads` — update(pid)/scan traffic (single-writer
  discipline respected);
* :func:`bundle_workloads` — ``propose(v, k)`` traffic over an SA
  bundle's levels;
* :func:`pac_workloads` — label-disciplined propose/decide pairs.

Each family salts its RNG with its own name, so two families sharing a
``base_seed`` draw *disjoint* streams: before the salt,
``register_workloads(2, k, seed)`` and ``snapshot_workloads(2, k, seed)``
made identical write/read vs update/scan coin flips, which silently
correlated "independent" sweeps. String seeding is sha512-based in
CPython, so the salted streams are stable across runs and
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..types import Operation, ProcessId, op


def _rng(seed: int, family: str) -> random.Random:
    """A seeded RNG salted per workload family (seed-disjointness)."""
    return random.Random(f"{family}:{seed}")


def queue_workloads(
    num_processes: int, ops_per_process: int, seed: int = 0
) -> Dict[ProcessId, List[Operation]]:
    rng = _rng(seed, "queue")
    workloads: Dict[ProcessId, List[Operation]] = {}
    for pid in range(num_processes):
        operations: List[Operation] = []
        for index in range(ops_per_process):
            if rng.random() < 0.6:
                operations.append(op("enqueue", f"p{pid}v{index}"))
            else:
                operations.append(op("dequeue"))
        workloads[pid] = operations
    return workloads


def register_workloads(
    num_processes: int, ops_per_process: int, seed: int = 0
) -> Dict[ProcessId, List[Operation]]:
    rng = _rng(seed, "register")
    workloads: Dict[ProcessId, List[Operation]] = {}
    for pid in range(num_processes):
        operations: List[Operation] = []
        for index in range(ops_per_process):
            if rng.random() < 0.5:
                operations.append(op("write", f"p{pid}v{index}"))
            else:
                operations.append(op("read"))
        workloads[pid] = operations
    return workloads


def counter_workloads(
    num_processes: int, ops_per_process: int, seed: int = 0
) -> Dict[ProcessId, List[Operation]]:
    rng = _rng(seed, "counter")
    return {
        pid: [
            op("fetch_and_add", rng.randint(1, 5))
            for _ in range(ops_per_process)
        ]
        for pid in range(num_processes)
    }


def snapshot_workloads(
    num_processes: int, ops_per_process: int, seed: int = 0
) -> Dict[ProcessId, List[Operation]]:
    rng = _rng(seed, "snapshot")
    workloads: Dict[ProcessId, List[Operation]] = {}
    for pid in range(num_processes):
        operations: List[Operation] = []
        for index in range(ops_per_process):
            if rng.random() < 0.5:
                operations.append(op("update", pid, f"p{pid}v{index}"))
            else:
                operations.append(op("scan"))
        workloads[pid] = operations
    return workloads


def bundle_workloads(
    num_processes: int,
    levels: Sequence[int],
    ops_per_process: int,
    seed: int = 0,
) -> Dict[ProcessId, List[Operation]]:
    rng = _rng(seed, "bundle")
    workloads: Dict[ProcessId, List[Operation]] = {}
    for pid in range(num_processes):
        operations = [
            op("propose", f"p{pid}v{index}", rng.choice(tuple(levels)))
            for index in range(ops_per_process)
        ]
        workloads[pid] = operations
    return workloads


def pac_workloads(
    num_processes: int, rounds: int, n_labels: int, seed: int = 0
) -> Dict[ProcessId, List[Operation]]:
    """Label-disciplined PAC traffic: process ``pid`` works label
    ``(pid % n_labels) + 1`` in propose/decide pairs — legal per label,
    adversarially interleavable across processes."""
    rng = _rng(seed, "pac")
    workloads: Dict[ProcessId, List[Operation]] = {}
    for pid in range(num_processes):
        label = (pid % n_labels) + 1
        operations: List[Operation] = []
        for index in range(rounds):
            operations.append(op("propose", f"p{pid}r{index}", label))
            operations.append(op("decide", label))
        workloads[pid] = operations
    return workloads
