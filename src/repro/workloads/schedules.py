"""Schedule and adversary generators for experiments and benchmarks.

Experiments sweep protocols over *many* adversaries; this module mass-
produces them:

* :func:`random_schedulers` — a family of seeded random schedulers;
* :func:`adversary_suite` — the standard mixed bag (round-robin, solos,
  alternations, crash-blocking, seeded randoms) sized to a process
  count;
* :func:`exhaustive_schedules` — every schedule of a given length over
  a pid set (for brute-force sweeps smaller than full model checking).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple

from ..runtime.scheduler import (
    AlternatingScheduler,
    BlockingScheduler,
    RoundRobinScheduler,
    Scheduler,
    SeededScheduler,
    SoloScheduler,
)
from ..types import ProcessId


def random_schedulers(count: int, base_seed: int = 0) -> List[Scheduler]:
    """``count`` independently seeded random schedulers."""
    return [SeededScheduler(seed=base_seed + index) for index in range(count)]


def adversary_suite(
    num_processes: int,
    random_count: int = 10,
    base_seed: int = 0,
    include_solos: bool = True,
) -> List[Tuple[str, Scheduler]]:
    """The standard named adversary family for ``num_processes``.

    Includes fair round-robin, seeded randoms, all pairwise
    alternations, per-process solo runs (optional; only valid for
    protocols whose solo runs terminate), and single-victim blocking
    (crash) schedulers.
    """
    suite: List[Tuple[str, Scheduler]] = [("round-robin", RoundRobinScheduler())]
    for index, scheduler in enumerate(random_schedulers(random_count, base_seed)):
        suite.append((f"random[{base_seed + index}]", scheduler))
    for first in range(num_processes):
        for second in range(first + 1, num_processes):
            suite.append(
                (f"alternate[{first},{second}]", AlternatingScheduler(first, second))
            )
    if include_solos:
        for pid in range(num_processes):
            suite.append((f"solo[{pid}]", SoloScheduler(pid)))
    for victim in range(num_processes):
        suite.append((f"crash[{victim}]", BlockingScheduler([victim])))
    return suite


def exhaustive_schedules(
    pids: Sequence[ProcessId], length: int
) -> Iterator[Tuple[ProcessId, ...]]:
    """Every pid sequence of exactly ``length`` — brute-force sweeps.

    Note the count is ``len(pids) ** length``; keep it small. For full
    coverage of branching object responses use the explorer instead.
    """
    yield from itertools.product(tuple(pids), repeat=length)
