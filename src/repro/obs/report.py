"""Render a recorded trace into a human (or JSON) summary.

``repro report trace.jsonl`` loads a JSONL trace, validates it against
:mod:`repro.obs.schema`, and aggregates it: spans grouped by name
(count / total / max duration), events grouped by name, the final
metrics snapshot, and any profile tables. The summary is itself a
plain dict, so ``--format json`` is just ``json.dumps`` of it —
the round-trip the tests pin.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .schema import load_trace


def summarize(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate validated trace records into a summary dict."""
    meta = dict(records[0])
    meta.pop("type", None)
    meta.pop("seq", None)

    spans: Dict[str, Dict[str, Any]] = {}
    events: Dict[str, int] = {}
    metrics: Dict[str, Any] = {}
    profiles: List[Dict[str, Any]] = []
    for record in records:
        kind = record["type"]
        if kind == "span":
            entry = spans.setdefault(
                record["name"],
                {"count": 0, "total_s": 0.0, "max_s": 0.0},
            )
            entry["count"] += 1
            entry["total_s"] += record["dur_s"]
            if record["dur_s"] > entry["max_s"]:
                entry["max_s"] = record["dur_s"]
        elif kind == "event":
            events[record["name"]] = events.get(record["name"], 0) + 1
        elif kind == "metrics":
            # Last snapshot wins: the closing session writes the final one.
            metrics = record["snapshot"]
        elif kind == "profile":
            profiles.append({"phase": record["phase"], "top": record["top"]})
    return {
        "meta": meta,
        "records": len(records),
        "spans": {name: spans[name] for name in sorted(spans)},
        "events": {name: events[name] for name in sorted(events)},
        "metrics": metrics,
        "profiles": profiles,
    }


def summarize_file(path: str) -> Dict[str, Any]:
    """Load, validate and summarize a trace file."""
    return summarize(load_trace(path))


def render_text(summary: Dict[str, Any]) -> str:
    """The human rendering of a trace summary."""
    lines: List[str] = []
    meta = summary["meta"]
    header = "trace: schema=%s repro=%s pid=%s" % (
        meta.get("schema"),
        meta.get("repro_version"),
        meta.get("pid"),
    )
    if meta.get("command"):
        header += " command=%s" % meta["command"]
    lines.append(header)
    lines.append("records: %d" % summary["records"])

    if summary["spans"]:
        lines.append("")
        lines.append("spans (by total time):")
        ordered = sorted(
            summary["spans"].items(),
            key=lambda item: (-item[1]["total_s"], item[0]),
        )
        for name, entry in ordered:
            lines.append(
                "  %-32s n=%-5d total=%.6fs max=%.6fs"
                % (name, entry["count"], entry["total_s"], entry["max_s"])
            )

    if summary["events"]:
        lines.append("")
        lines.append("events:")
        for name in sorted(summary["events"]):
            lines.append("  %-32s n=%d" % (name, summary["events"][name]))

    metrics = summary["metrics"]
    if metrics:
        counters = metrics.get("counters", {})
        gauges = metrics.get("gauges", {})
        histograms = metrics.get("histograms", {})
        if counters or gauges or histograms:
            lines.append("")
            lines.append("metrics:")
        for name in sorted(counters):
            lines.append("  counter   %-30s %s" % (name, counters[name]))
        for name in sorted(gauges):
            lines.append("  gauge     %-30s %s" % (name, gauges[name]))
        for name in sorted(histograms):
            summary_h = histograms[name]
            lines.append(
                "  histogram %-30s count=%s total=%s min=%s max=%s"
                % (
                    name,
                    summary_h["count"],
                    summary_h["total"],
                    summary_h["min"],
                    summary_h["max"],
                )
            )

    for profile in summary["profiles"]:
        lines.append("")
        lines.append("profile: %s" % profile["phase"])
        for row in profile["top"]:
            lines.append(
                "  %8s calls  tot=%.6fs cum=%.6fs  %s"
                % (
                    row["ncalls"],
                    row["tottime_s"],
                    row["cumtime_s"],
                    row["func"],
                )
            )
    return "\n".join(lines)


def render_json(summary: Dict[str, Any]) -> str:
    return json.dumps(summary, indent=2, sort_keys=True)
