"""Profiling hooks: ``with profile_phase("explore"):`` around any phase.

A thin, opt-in bridge from :mod:`cProfile` into the trace: when the
ambient session has profiling enabled (``--profile`` / ``REPRO_PROFILE``)
*and* a trace is being written, the wrapped block runs under a profiler
and a ``profile`` record with the top-N functions by cumulative time
lands in the trace. Otherwise the context is a strict no-op — no
profiler object is even constructed — so instrumented code pays one
function call when observation is off.

Profiling output is inherently non-deterministic (timings, and even
the function set can vary with memoisation warm-up); it is therefore
trace-only, never part of metrics snapshots, and ``repro report``
renders it as an informational table.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List

from . import runtime

#: How many rows of the cumulative-time table go into the trace.
TOP_N = 15


def _top_rows(profiler: cProfile.Profile, top_n: int) -> List[Dict[str, Any]]:
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: List[Dict[str, Any]] = []
    for func in stats.fcn_list[:top_n]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        rows.append(
            {
                "func": "%s:%d:%s" % (filename, lineno, name),
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return rows


@contextmanager
def profile_phase(phase: str, top_n: int = TOP_N) -> Iterator[None]:
    """Profile the block and emit a ``profile`` trace record.

    No-op unless the ambient session has profiling on and owns a live
    trace (profiles without a sink would be dropped on the floor).
    """
    if not runtime.profiling():
        yield
        return
    session = runtime.current()
    assert session is not None and session.tracer is not None
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        session.tracer.profile(phase, _top_rows(profiler, top_n))
