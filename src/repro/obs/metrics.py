"""Zero-dependency metrics registry with deterministic snapshots.

The observability layer's correctness bar is the repo's usual one:
**bit-determinism**. A metric snapshot taken after ``--jobs 1`` and
after ``--jobs 2`` of the same sweep must be byte-identical, because
the CI smoke diffs them (see ``docs/observability.md``). Three design
rules make that structural rather than accidental:

* metrics record **deterministic quantities only** — graph sizes,
  hit/miss counts, execution counts, frontier depths. Wall-clock
  timings never enter the registry; they belong to the trace layer
  (:mod:`repro.obs.trace`), whose records are explicitly excluded from
  byte-comparison. This module therefore contains no clock reads at
  all, which lint rule R001 now enforces for the ``obs`` role;
* snapshots are **plain sorted dicts** of plain numbers — rendering
  with ``json.dumps(..., sort_keys=True)`` is reproducible across
  interpreter runs and ``PYTHONHASHSEED`` values;
* merging is **ordered folding**: :meth:`MetricsRegistry.merge_snapshot`
  is called by :class:`~repro.analysis.parallel.VerificationPool` in
  work-item *submission* order, never completion order. Counters and
  histograms fold commutatively anyway; gauges are last-write-wins, so
  the submission-order fold makes pooled runs reproduce the inline
  run's gauge values exactly.

Three instrument kinds:

* **counter** — monotone int, merged by addition;
* **gauge** — last observed value, merged by overwrite in fold order;
* **histogram** — count/total/min/max summary of observed values,
  merged component-wise (no buckets: the consumers want magnitude
  summaries, and bucket boundaries would be one more schema to keep
  stable).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Union

Number = Union[int, float]

#: Snapshot shape version; bumped when the layout changes.
SNAPSHOT_SCHEMA = 1


def empty_snapshot() -> Dict[str, Any]:
    """The snapshot of a registry that never recorded anything."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


class MetricsRegistry:
    """Counters, gauges and histograms with deterministic snapshots."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}
        self._histograms: Dict[str, Dict[str, Number]] = {}

    # -- recording -------------------------------------------------------

    def counter(self, name: str, delta: Number = 1) -> None:
        """Add ``delta`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def histogram(self, name: str, value: Number) -> None:
        """Fold ``value`` into histogram ``name``'s summary."""
        summary = self._histograms.get(name)
        if summary is None:
            self._histograms[name] = {
                "count": 1,
                "total": value,
                "min": value,
                "max": value,
            }
            return
        summary["count"] += 1
        summary["total"] += value
        if value < summary["min"]:
            summary["min"] = value
        if value > summary["max"]:
            summary["max"] = value

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict rendering with sorted keys (JSON-stable)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {
                name: self._counters[name] for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name] for name in sorted(self._gauges)
            },
            "histograms": {
                name: dict(self._histograms[name])
                for name in sorted(self._histograms)
            },
        }

    def merge_snapshot(self, snapshot: Optional[Mapping[str, Any]]) -> None:
        """Fold one snapshot into this registry.

        Counters add, histograms fold component-wise, gauges overwrite —
        so folding worker snapshots in submission order reproduces the
        inline (``jobs=1``) registry exactly.
        """
        if not snapshot:
            return
        for name in sorted(snapshot.get("counters", {})):
            self.counter(name, snapshot["counters"][name])
        for name in sorted(snapshot.get("gauges", {})):
            self.gauge(name, snapshot["gauges"][name])
        for name in sorted(snapshot.get("histograms", {})):
            other = snapshot["histograms"][name]
            summary = self._histograms.get(name)
            if summary is None:
                self._histograms[name] = dict(other)
                continue
            summary["count"] += other["count"]
            summary["total"] += other["total"]
            if other["min"] < summary["min"]:
                summary["min"] = other["min"]
            if other["max"] > summary["max"]:
                summary["max"] = other["max"]

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )


def merge_snapshots(
    snapshots: Sequence[Optional[Mapping[str, Any]]],
) -> Dict[str, Any]:
    """Fold ``snapshots`` (in order) into one fresh snapshot."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()
