"""Span-based structured tracing with a JSONL sink.

One :class:`Tracer` = one trace file. Records are one JSON object per
line, ``sort_keys=True`` so field order is stable; the record shapes
are specified (and validated) by :mod:`repro.obs.schema`:

* ``meta`` — first line: schema version, package version, pid, plus
  whatever the opening session supplied (the CLI records the command);
* ``span`` — one *completed* phase: name, id, parent id, start offset,
  duration, and attributes set during the phase. Span ids are assigned
  sequentially, parent links come from the per-tracer span stack, so
  the tree is deterministic even though the timings are not;
* ``event`` — one point observation (a cache probe, a pool item);
* ``profile`` — a cProfile top-N table (:mod:`repro.obs.profile`);
* ``metrics`` — a registry snapshot (the closing session writes one);
* ``end`` — last line, with the total record count.

Determinism contract: everything in a trace record is deterministic
**except** the fields named ``t_s`` / ``dur_s`` / ``exec_s`` (wall-time
offsets and durations) — consumers that byte-compare traces must strip
exactly those (``repro.obs.schema.VOLATILE_FIELDS``; the golden schema
test does). This module is the one place in the library allowed to
read clocks: timings recorded here never feed back into schedules or
verdicts, which is why the ``repro: noqa[R001]`` suppressions below
are sound.

Fork safety: a tracer records its owning pid. A worker process forked
while a trace is active inherits the session object but must not write
to the shared file descriptor — :meth:`Tracer.owned` is how the
ambient-session machinery checks, and foreign-pid writes become no-ops.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, IO, Iterator, List, Optional, Union
from contextlib import contextmanager

#: Trace file schema version (part of the ``meta`` record).
TRACE_SCHEMA = 1


class Span:
    """A live span: set attributes with :meth:`set` while inside it."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_t0")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        t0: float,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = {}
        self._t0 = t0

    def set(self, **attrs: Any) -> None:
        """Attach attributes (recorded when the span completes)."""
        self.attrs.update(attrs)


class _NullSpan:
    """Stateless stand-in when tracing is off; ``set`` is a no-op."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Write span/event/profile/metrics records to one JSONL sink."""

    def __init__(
        self,
        sink: Union[str, os.PathLike, IO[str]],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if hasattr(sink, "write"):
            self._fh: IO[str] = sink  # type: ignore[assignment]
            self._owns_fh = False
            self.path: Optional[str] = None
        else:
            self._fh = open(os.fspath(sink), "w", encoding="utf-8")
            self._owns_fh = True
            self.path = os.fspath(sink)
        self.pid = os.getpid()
        self._records = 0
        self._next_span_id = 0
        self._stack: List[Span] = []
        self._closed = False
        # Offsets are relative to this origin; never compared byte-wise.
        self._origin = time.perf_counter()  # repro: noqa[R001] trace timings are observability-only, never replayed
        from .. import __version__

        record: Dict[str, Any] = {
            "type": "meta",
            "schema": TRACE_SCHEMA,
            "repro_version": __version__,
            "pid": self.pid,
        }
        if meta:
            record.update(meta)
        self._write(record)

    # -- record plumbing -------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._origin  # repro: noqa[R001] trace timings are observability-only, never replayed

    def owned(self) -> bool:
        """False in a forked child: the fd belongs to the parent."""
        return not self._closed and os.getpid() == self.pid

    def _write(self, record: Dict[str, Any]) -> None:
        record["seq"] = self._records
        self._records += 1
        self._fh.write(json.dumps(record, sort_keys=True, default=repr))
        self._fh.write("\n")
        # Complete lines must hit the sink as they happen: live tailers
        # (the serve layer's /jobs/<id>/events stream) follow this file
        # while the traced run is still executing. Records are per
        # span/phase, not per configuration, so the flush is cheap.
        self._fh.flush()

    # -- public recording ------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """One phase: records a ``span`` line when the block exits."""
        if not self.owned():
            yield NULL_SPAN  # type: ignore[misc]
            return
        t0 = self._now()
        span = Span(name, self._next_span_id, self._parent_id(), t0)
        self._next_span_id += 1
        span.attrs.update(attrs)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            self._write(
                {
                    "type": "span",
                    "name": span.name,
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "t_s": round(t0, 9),
                    "dur_s": round(self._now() - t0, 9),
                    "attrs": span.attrs,
                }
            )

    def _parent_id(self) -> Optional[int]:
        return self._stack[-1].span_id if self._stack else None

    def event(self, name: str, **attrs: Any) -> None:
        """One point observation under the current span (if any)."""
        if not self.owned():
            return
        self._write(
            {
                "type": "event",
                "name": name,
                "parent": self._parent_id(),
                "t_s": round(self._now(), 9),
                "attrs": attrs,
            }
        )

    def profile(self, phase: str, rows: List[Dict[str, Any]]) -> None:
        """A cProfile top-N table for ``phase`` (see repro.obs.profile)."""
        if not self.owned():
            return
        self._write(
            {
                "type": "profile",
                "phase": phase,
                "parent": self._parent_id(),
                "top": rows,
            }
        )

    def metrics(self, snapshot: Dict[str, Any]) -> None:
        """A metrics-registry snapshot (deterministic by construction)."""
        if not self.owned():
            return
        self._write({"type": "metrics", "snapshot": snapshot})

    def close(self) -> None:
        """Write the ``end`` record and release the sink."""
        if self._closed or os.getpid() != self.pid:
            return
        self._write({"type": "end", "records": self._records + 1})
        if self._owns_fh:
            self._fh.close()
        else:
            self._fh.flush()
        self._closed = True
