"""repro.obs — structured observability: metrics, traces, profiling.

Three layers, all zero-dependency and all opt-in:

* :mod:`repro.obs.metrics` — deterministic counters/gauges/histograms
  whose snapshots are byte-identical across ``--jobs`` values;
* :mod:`repro.obs.trace` / :mod:`repro.obs.schema` — span-based JSONL
  tracing (``--trace`` / ``REPRO_TRACE``) with a validated schema;
* :mod:`repro.obs.profile` — ``with profile_phase(...)`` cProfile
  tables emitted into the trace (``--profile`` / ``REPRO_PROFILE``).

Engines record through the ambient-session helpers re-exported here
(:func:`counter`, :func:`span`, :func:`event`, …); with no session
active every helper is a near-free no-op. ``repro report`` renders a
recorded trace via :mod:`repro.obs.report`.
"""

from .metrics import (
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
)
from .profile import profile_phase
from .runtime import (
    ObsSession,
    counter,
    current,
    enabled,
    event,
    gauge,
    histogram,
    profiling,
    scoped,
    session,
    snapshot,
    span,
    tracing,
)
from .schema import (
    TraceSchemaError,
    VOLATILE_FIELDS,
    load_trace,
    strip_volatile,
    validate_record,
    validate_trace,
)
from .trace import NULL_SPAN, TRACE_SCHEMA, Span, Tracer

__all__ = [
    "SNAPSHOT_SCHEMA",
    "TRACE_SCHEMA",
    "VOLATILE_FIELDS",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObsSession",
    "Span",
    "TraceSchemaError",
    "Tracer",
    "counter",
    "current",
    "empty_snapshot",
    "enabled",
    "event",
    "gauge",
    "histogram",
    "load_trace",
    "merge_snapshots",
    "profile_phase",
    "profiling",
    "scoped",
    "session",
    "snapshot",
    "span",
    "strip_volatile",
    "tracing",
    "validate_record",
    "validate_trace",
]
