"""Trace-file schema: record shapes, validation, volatile fields.

The JSONL trace format (:mod:`repro.obs.trace`) is consumed by
``repro report``, the trace-smoke CI job, and the golden schema test —
all three validate through :func:`validate_record` / :func:`validate_trace`
so there is exactly one statement of what a trace may contain.

Byte-comparison contract: two traces of the same run differ only in
the fields listed in :data:`VOLATILE_FIELDS` (wall-time offsets and
durations). :func:`strip_volatile` removes them, which is how the
golden test and the CI diff normalise before comparing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Tuple

from .trace import TRACE_SCHEMA

#: Wall-time fields: present in traces, excluded from byte-comparison.
VOLATILE_FIELDS = frozenset({"t_s", "dur_s", "exec_s"})

#: record type -> (required fields, optional fields); every record also
#: carries ``type`` and ``seq``.
RECORD_FIELDS: Dict[str, Tuple[frozenset, frozenset]] = {
    "meta": (
        frozenset({"schema", "repro_version", "pid"}),
        frozenset({"command", "argv", "jobs", "seed"}),
    ),
    "span": (
        frozenset({"name", "id", "parent", "t_s", "dur_s", "attrs"}),
        frozenset(),
    ),
    "event": (
        frozenset({"name", "parent", "t_s", "attrs"}),
        frozenset(),
    ),
    "profile": (
        frozenset({"phase", "parent", "top"}),
        frozenset(),
    ),
    "metrics": (
        frozenset({"snapshot"}),
        frozenset(),
    ),
    "end": (
        frozenset({"records"}),
        frozenset(),
    ),
}


class TraceSchemaError(ValueError):
    """A trace record violates the schema."""


def validate_record(record: Dict[str, Any]) -> None:
    """Raise :class:`TraceSchemaError` unless ``record`` is well-formed."""
    if not isinstance(record, dict):
        raise TraceSchemaError("record is not an object: %r" % (record,))
    kind = record.get("type")
    if kind not in RECORD_FIELDS:
        raise TraceSchemaError("unknown record type: %r" % (kind,))
    if not isinstance(record.get("seq"), int):
        raise TraceSchemaError("record missing integer 'seq': %r" % (record,))
    required, optional = RECORD_FIELDS[kind]
    present = set(record) - {"type", "seq"}
    missing = required - present
    if missing:
        raise TraceSchemaError(
            "%s record missing %s" % (kind, sorted(missing))
        )
    unknown = present - required - optional
    if unknown:
        raise TraceSchemaError(
            "%s record has unknown fields %s" % (kind, sorted(unknown))
        )
    if kind == "meta" and record["schema"] != TRACE_SCHEMA:
        raise TraceSchemaError(
            "unsupported trace schema %r (supported: %d)"
            % (record["schema"], TRACE_SCHEMA)
        )


def iter_records(lines: Iterable[str]) -> Iterator[Dict[str, Any]]:
    """Parse JSONL lines into records (no validation)."""
    for line in lines:
        line = line.strip()
        if line:
            yield json.loads(line)


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load and fully validate a trace file.

    Checks every record's shape plus the file-level invariants: one
    leading ``meta`` record, one trailing ``end`` record whose count
    matches, and contiguous ``seq`` numbering.
    """
    with open(path, "r", encoding="utf-8") as fh:
        records = list(iter_records(fh))
    validate_trace(records)
    return records


def validate_trace(records: List[Dict[str, Any]]) -> None:
    """Validate a full record sequence (shapes + file invariants)."""
    if not records:
        raise TraceSchemaError("empty trace")
    for record in records:
        validate_record(record)
    if records[0]["type"] != "meta":
        raise TraceSchemaError("first record is not 'meta'")
    if records[-1]["type"] != "end":
        raise TraceSchemaError("last record is not 'end'")
    for position, record in enumerate(records):
        if record["seq"] != position:
            raise TraceSchemaError(
                "seq %r at position %d" % (record["seq"], position)
            )
    if records[-1]["records"] != len(records):
        raise TraceSchemaError(
            "end record counts %r records, file has %d"
            % (records[-1]["records"], len(records))
        )


def strip_volatile(record: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``record`` without wall-time fields (for comparison)."""
    clean = {
        key: value
        for key, value in record.items()
        if key not in VOLATILE_FIELDS
    }
    attrs = clean.get("attrs")
    if isinstance(attrs, dict):
        clean["attrs"] = {
            key: value
            for key, value in attrs.items()
            if key not in VOLATILE_FIELDS
        }
    return clean
