"""The ambient observation session: one stack, explicit scoping.

Engines (explorer, pool, cache, fuzzer) do not carry registry/tracer
handles through their signatures; they call the module-level helpers
here (:func:`counter`, :func:`span`, :func:`event`, …), which resolve
against a process-local **session stack**:

* no active session → every helper is a cheap no-op (one truthiness
  check), which is what keeps the tracing-off overhead under the
  benched 5% bound;
* :func:`session` (the CLI / :mod:`repro.api` entry) pushes a session
  with a fresh :class:`~repro.obs.metrics.MetricsRegistry` and — only
  when a trace path is given — a :class:`~repro.obs.trace.Tracer`;
* :func:`scoped` pushes a *child* session with its own registry but
  the parent's tracer: :class:`~repro.analysis.parallel.VerificationPool`
  wraps every work item in one, so each item's metrics are captured in
  isolation and folded back in submission order (the determinism
  contract of ``docs/observability.md``).

The stack is deliberately not thread-local: the repo's parallelism is
process-based (``multiprocessing``), and a forked worker inherits the
stack — harmless for metrics (the worker's writes land in its own copy
and travel home as snapshots) and guarded for traces (the tracer
refuses to write from a foreign pid).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .metrics import MetricsRegistry, empty_snapshot
from .trace import NULL_SPAN, Tracer

#: Environment opt-ins, honoured by :func:`session` when the caller
#: passes no explicit value: a trace path and a profiling flag.
TRACE_ENV = "REPRO_TRACE"
PROFILE_ENV = "REPRO_PROFILE"


class ObsSession:
    """One observation scope: a registry plus an optional tracer."""

    __slots__ = ("registry", "tracer", "profiling", "_owns_tracer")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        profiling: bool = False,
        owns_tracer: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.profiling = profiling
        self._owns_tracer = owns_tracer

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def close(self) -> None:
        if self.tracer is not None and self._owns_tracer:
            self.tracer.metrics(self.snapshot())
            self.tracer.close()


_STACK: List[ObsSession] = []


def current() -> Optional[ObsSession]:
    """The innermost active session, or None."""
    return _STACK[-1] if _STACK else None


def enabled() -> bool:
    """Is any observation session active (metrics collected)?"""
    return bool(_STACK)


def tracing() -> bool:
    """Is a trace being written by the *current process*?"""
    if not _STACK:
        return False
    tracer = _STACK[-1].tracer
    return tracer is not None and tracer.owned()


def profiling() -> bool:
    """Should :func:`repro.obs.profile.profile_phase` actually profile?"""
    return bool(_STACK) and _STACK[-1].profiling and tracing()


# -- recording helpers (no-ops without a session) ------------------------


def counter(name: str, delta: float = 1) -> None:
    if _STACK:
        _STACK[-1].registry.counter(name, delta)


def gauge(name: str, value: float) -> None:
    if _STACK:
        _STACK[-1].registry.gauge(name, value)


def histogram(name: str, value: float) -> None:
    if _STACK:
        _STACK[-1].registry.histogram(name, value)


def event(name: str, **attrs: Any) -> None:
    if _STACK:
        tracer = _STACK[-1].tracer
        if tracer is not None:
            tracer.event(name, **attrs)


class _NullSpanContext:
    """Reusable, stateless ``with`` target when tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


def span(name: str, **attrs: Any):
    """A trace span context (a shared no-op when tracing is off)."""
    if _STACK:
        tracer = _STACK[-1].tracer
        if tracer is not None:
            return tracer.span(name, **attrs)
    return _NULL_SPAN_CONTEXT


def snapshot() -> Dict[str, Any]:
    """The current session's metrics snapshot (empty without one)."""
    if _STACK:
        return _STACK[-1].snapshot()
    return empty_snapshot()


# -- session management ---------------------------------------------------


@contextmanager
def session(
    trace_path: Optional[os.PathLike] = None,
    profile: Optional[bool] = None,
    meta: Optional[Dict[str, Any]] = None,
    reuse: bool = True,
) -> Iterator[ObsSession]:
    """Open (or, with ``reuse``, join) an observation session.

    ``trace_path`` defaults to ``$REPRO_TRACE`` (empty/unset = no
    trace); ``profile`` defaults to ``$REPRO_PROFILE`` being a truthy
    string. With ``reuse`` (the default) an already-active session is
    yielded as-is instead of nesting — the pattern that lets
    :mod:`repro.api` functions open sessions unconditionally while the
    CLI wraps them in one outer session.
    """
    if reuse and _STACK:
        yield _STACK[-1]
        return
    if trace_path is None:
        env_path = os.environ.get(TRACE_ENV, "")
        trace_path = env_path if env_path else None
    if profile is None:
        profile = os.environ.get(PROFILE_ENV, "") not in ("", "0", "false")
    tracer = Tracer(trace_path, meta=meta) if trace_path is not None else None
    sess = ObsSession(tracer=tracer, profiling=bool(profile))
    _STACK.append(sess)
    try:
        yield sess
    finally:
        _STACK.pop()
        sess.close()


@contextmanager
def scoped() -> Iterator[ObsSession]:
    """An isolated metrics scope sharing the ambient tracer.

    Used around every :class:`~repro.analysis.parallel.VerificationPool`
    work item (inline *and* in workers), so per-item metrics are
    captured in a fresh registry whose snapshot the pool folds back in
    submission order. Cheap: one small registry, no I/O.
    """
    parent = current()
    sess = ObsSession(
        tracer=parent.tracer if parent is not None else None,
        profiling=parent.profiling if parent is not None else False,
        owns_tracer=False,
    )
    _STACK.append(sess)
    try:
        yield sess
    finally:
        _STACK.pop()
