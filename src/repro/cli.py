"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — the 60-second n-PAC / Algorithm 2 tour;
* ``check-algorithm2 --n N`` — model-check Theorem 4.1 at size N;
* ``refute [--candidate NAME]`` — run the doomed-candidate suite and
  render each witness (the executable face of Theorems 4.2 / 5.2);
* ``separation --n N`` — the Corollary 6.6 pipeline at level N;
* ``power`` — print the set agreement power table;
* ``list-candidates`` — name the candidate suite;
* ``lint`` — the protocol-aware static analysis pass (replayability
  contract R001–R006, see :mod:`repro.lint`);
* ``cache stats|clear`` — inspect or drop the persistent exploration
  cache (see :mod:`repro.analysis.cache`);
* ``fuzz`` — seeded coverage-guided schedule/response fuzzing of the
  candidate suite (or Algorithm 2 instances), with automatic
  counterexample shrinking and strict replay verification (see
  :mod:`repro.fuzz` and ``docs/fuzzing.md``). ``--seed``-pinned runs
  are bit-reproducible, including across ``--jobs`` values.

Sweep commands (``check-algorithm2``, ``refute``) accept ``--jobs N``
to fan their independent instances over a worker pool and (for
``check-algorithm2``) ``--cache`` to reuse persisted per-instance
verdicts; both paths report byte-identical results to the serial,
uncached run.

Every command exits 0 on "the paper's claim reproduced" and 1
otherwise, so the CLI doubles as a smoke-check in CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis.explorer import Explorer
from .core.pac import NPacSpec
from .core.power import (
    combined_pac_power,
    m_consensus_power,
    on_power,
    register_power,
    strong_sa_power,
)
from .protocols.candidates import all_candidates
from .protocols.dac_from_pac import algorithm2_processes
from .protocols.tasks import DacDecisionTask
from .types import op


def _cmd_demo(_args: argparse.Namespace) -> int:
    spec = NPacSpec(2)
    _state, responses = spec.run(
        [op("propose", "hello", 1), op("decide", 1)]
    )
    print(f"2-PAC: propose('hello', 1) -> {responses[0]!r}; "
          f"decide(1) -> {responses[1]!r}")
    inputs = (1, 0, 0)
    explorer = Explorer({"PAC": NPacSpec(3)}, algorithm2_processes(inputs))
    verdict = explorer.check_safety(DacDecisionTask(3), inputs)
    print(f"Algorithm 2 @ n=3, inputs {inputs}: "
          f"{'no violation over all schedules ✓' if verdict is None else 'VIOLATION'}")
    return 0 if verdict is None else 1


def _cmd_check_algorithm2(args: argparse.Namespace) -> int:
    from .analysis.cache import ExplorationCache, fingerprint
    from .analysis.parallel import (
        VerificationPool,
        WorkItem,
        algorithm2_instance_check,
    )

    n = args.n
    task = DacDecisionTask(n)
    inputs_list = [tuple(inputs) for inputs in task.input_assignments()]
    cache = ExplorationCache(args.cache_dir) if args.cache else None

    # Cache-first: warm instances resolve without any exploration (or
    # worker dispatch); only misses go to the pool.
    resolved = {}
    fingerprints = {}
    to_run = []
    for inputs in inputs_list:
        if cache is not None:
            fp = fingerprint(
                cmd="check-algorithm2",
                n=n,
                inputs=inputs,
                symmetry=bool(args.symmetry),
                max_configurations=400_000,
            )
            fingerprints[inputs] = fp
            payload = cache.get(fp)
            if payload is not None:
                resolved[inputs] = payload["value"]
                continue
        to_run.append(
            WorkItem(
                key=inputs,
                fn=algorithm2_instance_check,
                args=(n, inputs, bool(args.symmetry)),
            )
        )
    pool = VerificationPool(jobs=args.jobs)
    for result in pool.run(to_run):
        if not result.ok:
            print(f"ERROR at inputs {result.key}: {result.failure.render()}")
            return 1
        resolved[result.key] = result.value
        if cache is not None:
            cache.put(fingerprints[result.key], {"value": result.value})

    total_configs = 0
    for inputs in inputs_list:
        record = resolved[inputs]
        if record["counterexample"] is not None:
            print(f"VIOLATION at inputs {inputs}:")
            print(record["counterexample"])
            return 1
        if record["solo_failures"]:
            pid = record["solo_failures"][0]
            print(f"SOLO NON-TERMINATION: pid {pid}, inputs {inputs}")
            return 1
        total_configs += record["configurations"]
    if cache is not None:
        print(f"cache: hits={cache.hits} misses={cache.misses}")
    reduced = " (symmetry-reduced)" if args.symmetry else ""
    print(f"Theorem 4.1 @ n={n}: all {2 ** n} input assignments, "
          f"{total_configs} configurations{reduced} — "
          f"safety + solo termination ✓")
    return 0


def _cmd_refute(args: argparse.Namespace) -> int:
    from .analysis.parallel import (
        VerificationPool,
        WorkItem,
        candidate_outcome,
    )

    candidates = all_candidates()
    indices = list(range(len(candidates)))
    if args.candidate is not None:
        indices = [
            index
            for index in indices
            if args.candidate in candidates[index].name
        ]
        if not indices:
            print(f"no candidate matching {args.candidate!r}; "
                  f"see list-candidates")
            return 1
    pool = VerificationPool(jobs=args.jobs)
    results = pool.run(
        [
            WorkItem(key=index, fn=candidate_outcome, args=(index,))
            for index in indices
        ]
    )
    status = 0
    for result in results:
        candidate = candidates[result.key]
        print(f"\n=== {candidate.name} (expected: "
              f"{candidate.expected_failure}) ===")
        if not result.ok:
            print(f"!! ERROR: {result.failure.render()}")
            status = 1
            continue
        record = result.value
        print(record["rendered"])
        if record["outcome"] != record["expected"]:
            print(f"!! MISMATCH: expected {record['expected']}, "
                  f"got {record['outcome']}")
            status = 1
    return status


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .analysis.render import render_schedule
    from .fuzz import FuzzCorpus, FuzzExecutor, fuzz_campaign
    from .fuzz.target import target_from_spec

    if args.algorithm2_n is not None:
        n = args.algorithm2_n
        specs = [
            ("algorithm2", n, tuple(inputs))
            for inputs in DacDecisionTask(n).input_assignments()
        ]
    else:
        candidates = all_candidates()
        indices = list(range(len(candidates)))
        if args.candidate is not None:
            indices = [
                index
                for index in indices
                if args.candidate in candidates[index].name
            ]
            if not indices:
                print(f"no candidate matching {args.candidate!r}; "
                      f"see list-candidates")
                return 1
        specs = [("candidate", index) for index in indices]

    corpus = FuzzCorpus(args.corpus_dir) if args.corpus_dir else None
    status = 0
    for spec in specs:
        target = target_from_spec(spec)
        report = fuzz_campaign(
            spec,
            seed=args.seed,
            budget=args.budget,
            shards=args.shards,
            jobs=args.jobs,
            max_steps=args.max_steps,
            shrink=args.shrink,
            corpus=corpus,
        )
        print(f"\n=== {target.name} (expected: "
              f"{target.expected_failure}) ===")
        print(f"fuzz: seed={report.seed} budget={report.budget} "
              f"shards={report.shards} executions={report.executions} "
              f"coverage={report.coverage} "
              f"corpus+={report.corpus_added} "
              f"(seeded {report.corpus_seeded})")
        observed = report.observed_failure()
        renderer = FuzzExecutor(target, max_steps=args.max_steps).explorer
        if not report.findings:
            print(f"no violation found in {report.executions} "
                  f"fuzzed runs")
        for finding in report.findings:
            print(f"FOUND {finding.kind} at execution "
                  f"{finding.execution} (shard {finding.shard}): "
                  f"{len(finding.schedule)} steps")
            if finding.shrunk_schedule is None:
                print(render_schedule(renderer, finding.schedule))
                continue
            replay = "✓" if finding.replay_matches else "DIVERGED"
            print(f"shrunk {len(finding.schedule)} -> "
                  f"{len(finding.shrunk_schedule)} steps; "
                  f"strict replay {replay}")
            print("shrunk schedule:")
            print(render_schedule(renderer, finding.shrunk_schedule))
            for violation in finding.shrunk_violations or ():
                print(f"  violation: {violation}")
            if finding.replay_matches is False:
                for mismatch in finding.replay_mismatches:
                    print(f"  !! replay mismatch: {mismatch}")
                status = 1
        if observed != target.expected_failure:
            print(f"!! MISMATCH: expected {target.expected_failure}, "
                  f"fuzzing observed {observed}")
            status = 1
    return status


def _cmd_cache(args: argparse.Namespace) -> int:
    from .analysis.cache import ExplorationCache

    cache = ExplorationCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache root: {stats.root}")
        print(f"entries:    {stats.entries}")
        print(f"bytes:      {stats.total_bytes}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} entries from {cache.root}")
    return 0


def _cmd_separation(args: argparse.Namespace) -> int:
    n = args.n
    from .core.power import on_prime_power
    from .protocols.candidates import dac_via_consensus, dac_via_sa_arbiter

    print(on_power(n).describe(5))
    print(on_prime_power(n).describe(5))
    if not on_power(n).agrees_with(on_prime_power(n), 8):
        print("POWER MISMATCH")
        return 1
    print("powers agree on the first 8 components ✓")

    inputs = DacDecisionTask.paper_initial_inputs(n + 1)
    task = DacDecisionTask(n + 1)
    explorer = Explorer(
        {"PAC": NPacSpec(n + 1)}, algorithm2_processes(inputs)
    )
    if explorer.check_safety(task, inputs) is not None:
        print(f"O_{n} FAILED to solve {n + 1}-DAC")
        return 1
    print(f"O_{n} solves {n + 1}-DAC over all schedules ✓")

    refuted = 0
    candidates = [
        dac_via_consensus(n, fallback="own"),
        dac_via_consensus(n, fallback="spin"),
        dac_via_sa_arbiter(n),
    ]
    for candidate in candidates:
        cand_explorer = Explorer(candidate.objects, candidate.processes)
        broken = cand_explorer.check_safety(candidate.task, candidate.inputs)
        if broken is None and cand_explorer.find_livelock() is None:
            print(f"candidate NOT refuted: {candidate.name}")
            return 1
        refuted += 1
    print(f"{refuted}/{len(candidates)} candidate reductions over O'_{n}'s "
          f"base family refuted ✓")
    print(f"Corollary 6.6 at level {n}: same power, not equivalent.")
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    from .core.relations import paper_ledger, separation_report

    ledger = paper_ledger(args.n)
    print(f"implementability ledger @ level n={args.n} "
          f"(every edge re-verified just now):")
    for edge in ledger.edges():
        arrow = "--implements-->" if edge.positive else "--CANNOT-->"
        print(f"  {edge.source} {arrow} {edge.target}")
        print(f"      evidence: {edge.evidence}")
    conflicts = ledger.check_consistency()
    if conflicts:
        for conflict in conflicts:
            print(f"  !! CONFLICT: {conflict}")
        return 1
    report = separation_report(args.n)
    print(f"\nCorollary 6.6 at level {args.n}: "
          f"{'reproduced ✓' if report.reproduces_corollary_6_6 else 'NOT reproduced'}")
    return 0 if report.reproduces_corollary_6_6 else 1


def _cmd_power(_args: argparse.Namespace) -> int:
    for power in [
        register_power(),
        m_consensus_power(2),
        m_consensus_power(3),
        strong_sa_power(2),
        combined_pac_power(3, 2),
        on_power(2),
        on_power(3),
    ]:
        print(power.describe(6))
    return 0


def _cmd_list_candidates(_args: argparse.Namespace) -> int:
    for candidate in all_candidates():
        print(f"{candidate.name:55s} expected: {candidate.expected_failure}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_lint

    return run_lint(args)


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    """The scale-out flags shared by sweep commands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the input sweep (default: 1, serial; "
        "results are merged deterministically either way)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse (and persist) per-instance verdicts from the "
        "content-addressed exploration cache",
    )
    parser.add_argument(
        "--no-cache",
        action="store_false",
        dest="cache",
        help="disable the exploration cache (default)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable reproduction of 'Life Beyond Set Agreement' "
        "(PODC 2017)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="60-second PAC / Algorithm 2 tour")

    check = commands.add_parser(
        "check-algorithm2", help="model-check Theorem 4.1 at size n"
    )
    check.add_argument("--n", type=int, default=3)
    check.add_argument(
        "--symmetry",
        action="store_true",
        help="explore the symmetry-reduced quotient graph (sound for "
        "Algorithm 2: non-distinguished equal-input processes are "
        "interchangeable; see docs/performance.md)",
    )
    _add_scale_arguments(check)

    refute = commands.add_parser(
        "refute", help="refute the doomed candidate suite with witnesses"
    )
    refute.add_argument("--candidate", default=None,
                        help="substring of a candidate name")
    refute.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the candidate sweep (default: 1, "
        "serial; results are merged deterministically either way)",
    )

    fuzz = commands.add_parser(
        "fuzz",
        help="coverage-guided schedule/response fuzzing with automatic "
        "counterexample shrinking (see docs/fuzzing.md)",
    )
    fuzz.add_argument(
        "--candidate",
        default=None,
        help="substring of a candidate name (default: whole suite)",
    )
    fuzz.add_argument(
        "--algorithm2-n",
        type=int,
        default=None,
        help="fuzz every Algorithm 2 input assignment at size n "
        "instead of the candidate suite",
    )
    fuzz.add_argument(
        "--budget",
        type=int,
        default=300,
        help="fuzzed executions per target (default: 300)",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign seed; runs are bit-reproducible per seed "
        "(default: 0)",
    )
    fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the shard fan-out (default: 1; any "
        "value yields identical results)",
    )
    fuzz.add_argument(
        "--shards",
        type=int,
        default=None,
        help="independent sub-campaigns per target (default: "
        "min(4, budget); part of the deterministic partition, "
        "unlike --jobs)",
    )
    fuzz.add_argument(
        "--corpus-dir",
        default=None,
        help="persist interesting gene sequences here and seed future "
        "campaigns from them (default: no persistence)",
    )
    fuzz.add_argument(
        "--shrink",
        action="store_true",
        default=True,
        help="delta-debug findings to minimal replayable schedules "
        "(default: on)",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_false",
        dest="shrink",
        help="keep findings as discovered",
    )
    fuzz.add_argument(
        "--max-steps",
        type=int,
        default=64,
        help="maximum schedule length per fuzzed run (default: 64)",
    )

    cache = commands.add_parser(
        "cache", help="persistent exploration cache maintenance"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--dir",
        dest="cache_dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )

    separation = commands.add_parser(
        "separation", help="run the Corollary 6.6 pipeline at level n"
    )
    separation.add_argument("--n", type=int, default=2)

    commands.add_parser("power", help="print set agreement power table")
    commands.add_parser("list-candidates", help="name the candidate suite")

    ledger = commands.add_parser(
        "ledger",
        help="re-verify and print the implementability ledger at level n",
    )
    ledger.add_argument("--n", type=int, default=2)

    from .lint.cli import add_lint_arguments

    lint = commands.add_parser(
        "lint",
        help="protocol-aware static analysis (replayability contract "
        "R001-R006)",
    )
    add_lint_arguments(lint)
    return parser


_HANDLERS = {
    "demo": _cmd_demo,
    "check-algorithm2": _cmd_check_algorithm2,
    "refute": _cmd_refute,
    "separation": _cmd_separation,
    "power": _cmd_power,
    "list-candidates": _cmd_list_candidates,
    "ledger": _cmd_ledger,
    "lint": _cmd_lint,
    "cache": _cmd_cache,
    "fuzz": _cmd_fuzz,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
