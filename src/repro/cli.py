"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — the 60-second n-PAC / Algorithm 2 tour;
* ``check-algorithm2 --n N`` — model-check Theorem 4.1 at size N;
* ``refute [--candidate NAME]`` — run the doomed-candidate suite and
  render each witness (the executable face of Theorems 4.2 / 5.2);
* ``separation --n N`` — the Corollary 6.6 pipeline at level N;
* ``power`` — print the set agreement power table;
* ``list-candidates`` — name the candidate suite;
* ``lint`` — the protocol-aware static analysis pass (replayability
  contract R001–R006 plus the interprocedural R007/R10x family, see
  :mod:`repro.lint`);
* ``cache stats|clear`` — inspect or drop the persistent exploration
  cache (see :mod:`repro.analysis.cache`);
* ``fuzz`` — seeded coverage-guided schedule/response fuzzing of the
  candidate suite (or Algorithm 2 instances), with automatic
  counterexample shrinking and strict replay verification (see
  :mod:`repro.fuzz` and ``docs/fuzzing.md``). ``--seed``-pinned runs
  are bit-reproducible, including across ``--jobs`` values;
* ``explore`` — build one Algorithm 2 instance's reachable
  configuration graph and report its shape;
* ``report TRACE`` — render a recorded JSONL trace into a summary
  (see :mod:`repro.obs` and ``docs/observability.md``);
* ``serve`` — run the asyncio verification service (request
  coalescing, warm result cache, streaming traces; see
  :mod:`repro.serve` and ``docs/serve.md``);
* ``serve-smoke`` — the end-to-end serve correctness harness CI runs.

Exploration-heavy commands (``check-algorithm2``, ``refute``, ``fuzz``,
``explore``) accept ``--kernel {auto,python,compiled}`` to pick the
packed-state exploration backend, ``--kernel-tables {on,off}`` to
pre-compile protocol semantics into flat tables ahead of exploration,
and ``--kernel-threads N`` to partition BFS frontiers across OS
threads in the compiled backend (see ``docs/performance.md``); every
combination produces byte-identical reports, verdicts, and cache keys.

Every command builds a :class:`repro.reports.Report` and renders it
through one renderer: ``--format text`` (default) prints the report
body — byte-identical to the pre-report printers — and ``--format
json`` prints the full serialized report, metrics snapshot included.
``--trace PATH`` (or ``REPRO_TRACE=PATH``) records a structured JSONL
trace of the run; ``--profile`` adds cProfile tables to it.

Sweep commands (``check-algorithm2``, ``refute``, ``fuzz``) accept
``--jobs N`` to fan their independent instances over a worker pool;
all paths report byte-identical results to the serial run. The heavy
commands are thin adapters over :mod:`repro.api`.

Every command exits 0 on "the paper's claim reproduced" and 1
otherwise, so the CLI doubles as a smoke-check in CI. Failures that
the error taxonomy names (:mod:`repro.errors`) exit with that code's
stable number — e.g. 2 for INVALID_REQUEST, 3 for KERNEL_UNAVAILABLE —
the same table the server renders as HTTP statuses.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import obs
from .errors import InvalidRequestError, ReproError, error_report
from .analysis.explorer import Explorer
from .core.pac import NPacSpec
from .core.power import (
    combined_pac_power,
    m_consensus_power,
    on_power,
    register_power,
    strong_sa_power,
)
from .protocols.candidates import all_candidates
from .protocols.dac_from_pac import algorithm2_processes
from .protocols.tasks import DacDecisionTask
from .reports import Finding, Report, render_report
from .types import op


def _cmd_demo(_args: argparse.Namespace) -> Report:
    spec = NPacSpec(2)
    _state, responses = spec.run(
        [op("propose", "hello", 1), op("decide", 1)]
    )
    lines = [
        f"2-PAC: propose('hello', 1) -> {responses[0]!r}; "
        f"decide(1) -> {responses[1]!r}"
    ]
    inputs = (1, 0, 0)
    explorer = Explorer({"PAC": NPacSpec(3)}, algorithm2_processes(inputs))
    verdict = explorer.check_safety(DacDecisionTask(3), inputs)
    lines.append(
        f"Algorithm 2 @ n=3, inputs {inputs}: "
        f"{'no violation over all schedules ✓' if verdict is None else 'VIOLATION'}"
    )
    ok = verdict is None
    return Report(
        command="demo",
        status="ok" if ok else "violation",
        exit_code=0 if ok else 1,
        summary=lines[-1],
        body=tuple(lines),
        data={"n": 3, "inputs": list(inputs), "violation": not ok},
    )


def _cmd_check_algorithm2(args: argparse.Namespace) -> Report:
    from .api import verify

    return verify(
        n=args.n,
        symmetry=bool(args.symmetry),
        jobs=args.jobs,
        cache=args.cache,
        cache_dir=args.cache_dir,
        kernel=args.kernel,
        kernel_tables=args.kernel_tables,
        kernel_threads=args.kernel_threads,
    )


def _cmd_refute(args: argparse.Namespace) -> Report:
    from .api import refute

    return refute(
        candidate=args.candidate,
        jobs=args.jobs,
        kernel=args.kernel,
        kernel_tables=args.kernel_tables,
        kernel_threads=args.kernel_threads,
    )


def _cmd_fuzz(args: argparse.Namespace) -> Report:
    from .api import fuzz

    return fuzz(
        candidate=args.candidate,
        algorithm2_n=args.algorithm2_n,
        budget=args.budget,
        seed=args.seed,
        jobs=args.jobs,
        shards=args.shards,
        corpus_dir=args.corpus_dir,
        shrink=args.shrink,
        max_steps=args.max_steps,
        kernel=args.kernel,
        kernel_tables=args.kernel_tables,
        kernel_threads=args.kernel_threads,
    )


def _cmd_explore(args: argparse.Namespace) -> Report:
    from .api import explore

    inputs = None
    if args.inputs is not None:
        inputs = tuple(
            int(part) for part in args.inputs.split(",") if part.strip() != ""
        )
    return explore(
        n=args.n,
        inputs=inputs,
        symmetry=bool(args.symmetry),
        cache=args.cache,
        cache_dir=args.cache_dir,
        max_configurations=args.max_configurations,
        kernel=args.kernel,
        kernel_tables=args.kernel_tables,
        kernel_threads=args.kernel_threads,
    )


def _cmd_cache(args: argparse.Namespace) -> Report:
    from .analysis.cache import ExplorationCache

    cache = ExplorationCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        lines = [
            f"cache root: {stats.root}",
            f"entries:    {stats.entries}",
            f"bytes:      {stats.total_bytes}",
        ]
        return Report(
            command="cache",
            summary=f"{stats.entries} cache entries",
            body=tuple(lines),
            data={
                "action": "stats",
                "root": stats.root,
                "entries": stats.entries,
                "bytes": stats.total_bytes,
            },
        )
    removed = cache.clear()
    line = f"removed {removed} entries from {cache.root}"
    return Report(
        command="cache",
        summary=line,
        body=(line,),
        data={"action": "clear", "root": str(cache.root), "removed": removed},
    )


def _cmd_separation(args: argparse.Namespace) -> Report:
    n = args.n
    from .core.power import on_prime_power
    from .protocols.candidates import dac_via_consensus, dac_via_sa_arbiter

    def failed(kind: str, line: str, lines: List[str]) -> Report:
        lines.append(line)
        return Report(
            command="separation",
            status="violation",
            exit_code=1,
            summary=line,
            body=tuple(lines),
            findings=(Finding(kind, subject=f"level {n}", detail=line),),
            data={"n": n},
        )

    lines: List[str] = []
    lines.append(on_power(n).describe(5))
    lines.append(on_prime_power(n).describe(5))
    if not on_power(n).agrees_with(on_prime_power(n), 8):
        return failed("power-mismatch", "POWER MISMATCH", lines)
    lines.append("powers agree on the first 8 components ✓")

    inputs = DacDecisionTask.paper_initial_inputs(n + 1)
    task = DacDecisionTask(n + 1)
    explorer = Explorer(
        {"PAC": NPacSpec(n + 1)}, algorithm2_processes(inputs)
    )
    if explorer.check_safety(task, inputs) is not None:
        return failed(
            "safety", f"O_{n} FAILED to solve {n + 1}-DAC", lines
        )
    lines.append(f"O_{n} solves {n + 1}-DAC over all schedules ✓")

    refuted = 0
    candidates = [
        dac_via_consensus(n, fallback="own"),
        dac_via_consensus(n, fallback="spin"),
        dac_via_sa_arbiter(n),
    ]
    for candidate in candidates:
        cand_explorer = Explorer(candidate.objects, candidate.processes)
        broken = cand_explorer.check_safety(candidate.task, candidate.inputs)
        if broken is None and cand_explorer.find_livelock() is None:
            return failed(
                "not-refuted", f"candidate NOT refuted: {candidate.name}", lines
            )
        refuted += 1
    lines.append(
        f"{refuted}/{len(candidates)} candidate reductions over O'_{n}'s "
        f"base family refuted ✓"
    )
    summary = f"Corollary 6.6 at level {n}: same power, not equivalent."
    lines.append(summary)
    return Report(
        command="separation",
        summary=summary,
        body=tuple(lines),
        data={"n": n, "refuted": refuted},
    )


def _cmd_ledger(args: argparse.Namespace) -> Report:
    from .core.relations import paper_ledger, separation_report

    lines: List[str] = []
    findings: List[Finding] = []
    ledger = paper_ledger(args.n)
    lines.append(
        f"implementability ledger @ level n={args.n} "
        f"(every edge re-verified just now):"
    )
    edges = []
    for edge in ledger.edges():
        arrow = "--implements-->" if edge.positive else "--CANNOT-->"
        lines.append(f"  {edge.source} {arrow} {edge.target}")
        lines.append(f"      evidence: {edge.evidence}")
        edges.append(
            {
                "source": edge.source,
                "target": edge.target,
                "positive": edge.positive,
                "evidence": edge.evidence,
            }
        )
    conflicts = ledger.check_consistency()
    if conflicts:
        for conflict in conflicts:
            lines.append(f"  !! CONFLICT: {conflict}")
            findings.append(
                Finding("conflict", subject=f"n={args.n}", detail=str(conflict))
            )
        return Report(
            command="ledger",
            status="violation",
            exit_code=1,
            summary=f"{len(conflicts)} ledger conflict(s)",
            body=tuple(lines),
            findings=tuple(findings),
            data={"n": args.n, "edges": edges},
        )
    report = separation_report(args.n)
    reproduced = report.reproduces_corollary_6_6
    lines.append("")
    summary = (
        f"Corollary 6.6 at level {args.n}: "
        f"{'reproduced ✓' if reproduced else 'NOT reproduced'}"
    )
    lines.append(summary)
    return Report(
        command="ledger",
        status="ok" if reproduced else "violation",
        exit_code=0 if reproduced else 1,
        summary=summary,
        body=tuple(lines),
        data={"n": args.n, "edges": edges, "reproduced": reproduced},
    )


def _cmd_power(_args: argparse.Namespace) -> Report:
    powers = [
        register_power(),
        m_consensus_power(2),
        m_consensus_power(3),
        strong_sa_power(2),
        combined_pac_power(3, 2),
        on_power(2),
        on_power(3),
    ]
    lines = [power.describe(6) for power in powers]
    return Report(
        command="power",
        summary=f"{len(powers)} power profiles",
        body=tuple(lines),
        data={"profiles": len(powers)},
    )


def _cmd_list_candidates(_args: argparse.Namespace) -> Report:
    candidates = all_candidates()
    lines = [
        f"{candidate.name:55s} expected: {candidate.expected_failure}"
        for candidate in candidates
    ]
    return Report(
        command="list-candidates",
        summary=f"{len(candidates)} candidates",
        body=tuple(lines),
        data={
            "candidates": [
                {
                    "name": candidate.name,
                    "expected": candidate.expected_failure,
                }
                for candidate in candidates
            ]
        },
    )


def _cmd_lint(args: argparse.Namespace) -> Report:
    import json
    from pathlib import Path

    from .lint.cli import default_target
    from .lint.engine import all_rules, lint_paths

    if args.list_rules:
        rules = all_rules()
        lines = [
            f"{rule.rule_id}  {rule.severity:7s}  {rule.title}"
            for rule in rules
        ]
        return Report(
            command="lint",
            summary=f"{len(rules)} rules",
            body=tuple(lines),
            data={"rules": [rule.rule_id for rule in rules]},
        )
    paths = [Path(p) for p in args.paths] or [default_target()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        lines = [f"repro lint: no such path: {path}" for path in missing]
        return Report(
            command="lint",
            status="error",
            exit_code=2,
            summary=lines[0],
            body=tuple(lines),
        )
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    try:
        lint_report = lint_paths(
            paths,
            select=select,
            jobs=getattr(args, "jobs", 1),
            cache_dir=getattr(args, "cache_dir", None),
        )
    except ValueError as exc:
        line = f"repro lint: {exc}"
        return Report(
            command="lint",
            status="error",
            exit_code=2,
            summary=line,
            body=(line,),
        )
    payload = json.loads(lint_report.to_json())
    if getattr(args, "format", "text") == "sarif":
        from .lint.sarif import render_sarif

        payload["sarif"] = render_sarif(lint_report)
    code = lint_report.exit_code()
    text = lint_report.render_text(show_suppressed=args.show_suppressed)
    return Report(
        command="lint",
        status="ok" if code == 0 else "error",
        exit_code=code,
        summary=f"{payload['summary']['errors']} lint error(s)",
        body=tuple(text.split("\n")),
        data=payload,
    )


def _cmd_report(args: argparse.Namespace) -> Report:
    from .obs import report as obs_report

    try:
        summary = obs_report.summarize_file(args.trace_file)
    except (OSError, ValueError) as exc:
        line = f"repro report: {exc}"
        return Report(
            command="report",
            status="error",
            exit_code=1,
            summary=line,
            body=(line,),
        )
    text = obs_report.render_text(summary)
    return Report(
        command="report",
        summary=f"{summary['records']} trace records",
        body=tuple(text.split("\n")),
        data=summary,
    )


def _add_observability_arguments(
    parser: argparse.ArgumentParser, include_format: bool = True
) -> None:
    """``--format/--trace/--profile``, shared by every command."""
    if include_format:
        parser.add_argument(
            "--format",
            choices=("text", "json"),
            default="text",
            help="output format (default: text)",
        )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a structured JSONL trace of this run "
        "(default: $REPRO_TRACE if set; see docs/observability.md)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="embed cProfile top-N tables in the trace "
        "(needs --trace or $REPRO_TRACE)",
    )


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    """``--kernel`` and friends, shared by exploration-heavy commands."""
    parser.add_argument(
        "--kernel",
        choices=("auto", "python", "compiled"),
        default=None,
        help="exploration backend (default: $REPRO_KERNEL or auto — "
        "compiled when the extension is built, python otherwise); all "
        "choices are byte-identical, see docs/performance.md",
    )
    parser.add_argument(
        "--kernel-tables",
        choices=("on", "off"),
        default=None,
        help="pre-compile protocol semantics into flat tables ahead of "
        "exploration (default: $REPRO_KERNEL_TABLES or off); results "
        "are byte-identical either way",
    )
    parser.add_argument(
        "--kernel-threads",
        type=int,
        default=None,
        metavar="N",
        help="partition each BFS frontier across N OS threads in the "
        "compiled backend (default: $REPRO_KERNEL_THREADS or 1); "
        "results are byte-identical for every N",
    )


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    """The scale-out flags shared by sweep commands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the input sweep (default: 1, serial; "
        "results are merged deterministically either way)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse (and persist) per-instance verdicts from the "
        "content-addressed exploration cache",
    )
    parser.add_argument(
        "--no-cache",
        action="store_false",
        dest="cache",
        help="disable the exploration cache (default)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable reproduction of 'Life Beyond Set Agreement' "
        "(PODC 2017)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="60-second PAC / Algorithm 2 tour")
    _add_observability_arguments(demo)

    check = commands.add_parser(
        "check-algorithm2", help="model-check Theorem 4.1 at size n"
    )
    check.add_argument("--n", type=int, default=3)
    check.add_argument(
        "--symmetry",
        action="store_true",
        help="explore the symmetry-reduced quotient graph (sound for "
        "Algorithm 2: non-distinguished equal-input processes are "
        "interchangeable; see docs/performance.md)",
    )
    _add_scale_arguments(check)
    _add_kernel_argument(check)
    _add_observability_arguments(check)

    refute = commands.add_parser(
        "refute", help="refute the doomed candidate suite with witnesses"
    )
    refute.add_argument("--candidate", default=None,
                        help="substring of a candidate name")
    refute.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the candidate sweep (default: 1, "
        "serial; results are merged deterministically either way)",
    )
    _add_kernel_argument(refute)
    _add_observability_arguments(refute)

    fuzz = commands.add_parser(
        "fuzz",
        help="coverage-guided schedule/response fuzzing with automatic "
        "counterexample shrinking (see docs/fuzzing.md)",
    )
    fuzz.add_argument(
        "--candidate",
        default=None,
        help="substring of a candidate name (default: whole suite)",
    )
    fuzz.add_argument(
        "--algorithm2-n",
        type=int,
        default=None,
        help="fuzz every Algorithm 2 input assignment at size n "
        "instead of the candidate suite",
    )
    fuzz.add_argument(
        "--budget",
        type=int,
        default=300,
        help="fuzzed executions per target (default: 300)",
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign seed; runs are bit-reproducible per seed "
        "(default: 0)",
    )
    fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the shard fan-out (default: 1; any "
        "value yields identical results)",
    )
    fuzz.add_argument(
        "--shards",
        type=int,
        default=None,
        help="independent sub-campaigns per target (default: "
        "min(4, budget); part of the deterministic partition, "
        "unlike --jobs)",
    )
    fuzz.add_argument(
        "--corpus-dir",
        default=None,
        help="persist interesting gene sequences here and seed future "
        "campaigns from them (default: no persistence)",
    )
    fuzz.add_argument(
        "--shrink",
        action="store_true",
        default=True,
        help="delta-debug findings to minimal replayable schedules "
        "(default: on)",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_false",
        dest="shrink",
        help="keep findings as discovered",
    )
    fuzz.add_argument(
        "--max-steps",
        type=int,
        default=64,
        help="maximum schedule length per fuzzed run (default: 64)",
    )
    _add_kernel_argument(fuzz)
    _add_observability_arguments(fuzz)

    explore = commands.add_parser(
        "explore",
        help="build one Algorithm 2 instance's configuration graph and "
        "report its shape",
    )
    explore.add_argument("--n", type=int, default=3)
    explore.add_argument(
        "--inputs",
        default=None,
        help="comma-separated input assignment (default: the paper's "
        "initial inputs at size n)",
    )
    explore.add_argument(
        "--symmetry",
        action="store_true",
        help="explore the symmetry-reduced quotient graph",
    )
    explore.add_argument(
        "--max-configurations",
        type=int,
        default=400_000,
        help="exploration budget (default: 400000)",
    )
    explore.add_argument(
        "--cache",
        action="store_true",
        help="reuse (and persist) the graph via the content-addressed "
        "exploration cache",
    )
    explore.add_argument(
        "--no-cache",
        action="store_false",
        dest="cache",
        help="disable the exploration cache (default)",
    )
    explore.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    _add_kernel_argument(explore)
    _add_observability_arguments(explore)

    cache = commands.add_parser(
        "cache", help="persistent exploration cache maintenance"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--dir",
        dest="cache_dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    _add_observability_arguments(cache)

    separation = commands.add_parser(
        "separation", help="run the Corollary 6.6 pipeline at level n"
    )
    separation.add_argument("--n", type=int, default=2)
    _add_observability_arguments(separation)

    power = commands.add_parser(
        "power", help="print set agreement power table"
    )
    _add_observability_arguments(power)
    list_candidates = commands.add_parser(
        "list-candidates", help="name the candidate suite"
    )
    _add_observability_arguments(list_candidates)

    ledger = commands.add_parser(
        "ledger",
        help="re-verify and print the implementability ledger at level n",
    )
    ledger.add_argument("--n", type=int, default=2)
    _add_observability_arguments(ledger)

    from .lint.cli import add_lint_arguments

    lint = commands.add_parser(
        "lint",
        help="protocol-aware static analysis (replayability contract "
        "R001-R006)",
    )
    add_lint_arguments(lint)
    _add_observability_arguments(lint, include_format=False)

    trace_report = commands.add_parser(
        "report",
        help="render a recorded JSONL trace into a summary "
        "(see docs/observability.md)",
    )
    trace_report.add_argument(
        "trace_file",
        help="path to a trace written with --trace / $REPRO_TRACE",
    )
    _add_observability_arguments(trace_report)

    serve = commands.add_parser(
        "serve",
        help="run the asyncio verification service (see docs/serve.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="listen port; 0 picks a free one (default: 8642)",
    )
    serve.add_argument(
        "--mode",
        choices=("process", "thread"),
        default="process",
        help="job executor: a process pool (default) or one serial "
        "worker thread (the observation stack is process-global, so "
        "thread mode never runs two jobs at once)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="process-pool size (default: 2; ignored in thread mode)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="live-job bound; past it submissions get 429 (default: 64)",
    )
    serve.add_argument(
        "--class-limit",
        action="append",
        default=None,
        metavar="PHASE=N",
        help="per-phase concurrency cap, e.g. --class-limit fuzz=1 "
        "(repeatable; default: 2 each)",
    )
    serve.add_argument(
        "--result-cache",
        type=int,
        default=256,
        help="warm result cache capacity, in reports (default: 256)",
    )
    serve.add_argument(
        "--job-history",
        type=int,
        default=256,
        help="finished jobs kept for /jobs/<id> (default: 256)",
    )
    serve.add_argument(
        "--spool-dir",
        default=None,
        help="directory for per-job trace spool files "
        "(default: a private temporary directory)",
    )

    commands.add_parser(
        "serve-smoke",
        help="boot a server and check the serve contract end to end",
    )
    return parser


_HANDLERS = {
    "demo": _cmd_demo,
    "check-algorithm2": _cmd_check_algorithm2,
    "refute": _cmd_refute,
    "separation": _cmd_separation,
    "power": _cmd_power,
    "list-candidates": _cmd_list_candidates,
    "ledger": _cmd_ledger,
    "lint": _cmd_lint,
    "cache": _cmd_cache,
    "fuzz": _cmd_fuzz,
    "explore": _cmd_explore,
    "report": _cmd_report,
}


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServerConfig, run_server
    from .serve.server import PHASES

    class_limits = {}
    for spec in args.class_limit or ():
        name, separator, value = spec.partition("=")
        if not separator or name not in PHASES or not value.isdigit():
            raise InvalidRequestError(
                f"--class-limit wants PHASE=N with PHASE in "
                f"{'/'.join(PHASES)}, got {spec!r}"
            )
        class_limits[name] = int(value)
    return run_server(
        ServerConfig(
            host=args.host,
            port=args.port,
            mode=args.mode,
            workers=args.workers,
            max_queue=args.max_queue,
            class_limits=class_limits,
            result_cache_size=args.result_cache,
            job_history_size=args.job_history,
            spool_dir=args.spool_dir,
        )
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # The serve commands never run under the CLI's ambient observation
    # session: the session stack is process-global, and an ambient
    # session would be joined (or inherited across fork) by the job
    # workers, swallowing their per-job spool tracers.
    if args.command == "serve":
        try:
            return _cmd_serve(args)
        except ReproError as exc:
            report = error_report("serve", exc)
            print(render_report(report, "text"))
            return report.exit_code
    if args.command == "serve-smoke":
        from .serve.smoke import run_smoke

        report = run_smoke()
        print(render_report(report, "text"))
        return report.exit_code
    with obs.session(
        trace_path=getattr(args, "trace", None),
        profile=True if getattr(args, "profile", False) else None,
        meta={"command": args.command},
    ) as sess:
        try:
            report = _HANDLERS[args.command](args)
        except ReproError as exc:
            # The error taxonomy's third consumer: the same table that
            # picks the server's HTTP status picks the exit code here.
            report = error_report(args.command, exc)
        report = report.with_metrics(sess.snapshot())
        print(render_report(report, getattr(args, "format", "text")))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
