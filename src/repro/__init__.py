"""repro — executable reproduction of "Life Beyond Set Agreement".

Chan, Hadzilacos & Toueg (PODC 2017) prove that the *set agreement
power* of a shared object does not determine which objects it can
implement: every level ``n >= 2`` of the consensus hierarchy contains a
pair ``O_n`` / ``O'_n`` with identical set agreement power that are not
equivalent. This package makes the paper's whole world executable:

* the objects — ``n``-PAC (Algorithm 1), ``n``-DAC, strong 2-SA,
  ``(n, k)``-SA, ``(n, m)``-PAC, ``O_n`` and ``O'_n``
  (:mod:`repro.core`), plus the classical catalog
  (:mod:`repro.objects`);
* the model — asynchronous processes over atomic objects with an
  adversarial scheduler (:mod:`repro.runtime`);
* the algorithms — Algorithm 2, the consensus/set-agreement protocol
  library, the Lemma 6.4 and Observation 5.1 implementations, the
  universal construction, and the doomed lower-bound candidates
  (:mod:`repro.protocols`);
* the proof machinery — bounded model checking, valency/bivalency
  analysis, and linearizability checking (:mod:`repro.analysis`).

Quickstart::

    from repro import NPacSpec, op
    spec = NPacSpec(2)
    _state, (done, decided) = spec.run(
        [op("propose", "hello", 1), op("decide", 1)])
    assert decided == "hello"

See ``examples/`` for full scenarios and ``EXPERIMENTS.md`` for the
paper-versus-measured record.
"""

from .errors import (
    AnalysisError,
    CacheIntegrityError,
    ExplorationBudgetExceeded,
    InvalidOperationError,
    InvalidRequestError,
    KernelUnavailableError,
    NotLinearizableError,
    ProtocolError,
    ReproError,
    SchedulingError,
    ServerOverloadedError,
    SpecificationError,
    classify_error,
    error_report,
)
from .types import ABORT, BOTTOM, DONE, NIL, Operation, op
from .objects import (
    CompareAndSwapSpec,
    FetchAndAddSpec,
    MConsensusSpec,
    QueueSpec,
    RegisterSpec,
    SequentialSpec,
    SharedObject,
    StickyBitSpec,
    SwapSpec,
    TestAndSetSpec,
    register_array,
)
from .core import (
    AbortableDacSpec,
    CombinedPacSpec,
    DacTask,
    NKSetAgreementSpec,
    NPacSpec,
    SetAgreementBundleSpec,
    SetAgreementPower,
    StrongSetAgreementSpec,
    UNBOUNDED,
    check_theorem_3_5,
    is_legal_history,
    make_on,
    make_on_prime,
    on_power,
    on_prime_power,
    separation_pair,
)
from .runtime import (
    GeneratorProcess,
    ProcessAutomaton,
    RoundRobinScheduler,
    SeededScheduler,
    SoloScheduler,
    System,
)
from .analysis import (
    Explorer,
    LinearizabilityChecker,
    check_linearizable,
    classify,
    find_critical_configuration,
)
from .protocols import (
    ConsensusTask,
    DacDecisionTask,
    KSetAgreementTask,
    UniversalConstruction,
    algorithm2_processes,
    all_candidates,
    check_implementation,
    on_prime_from_consensus_and_sa,
)

__version__ = "1.0.0"

__all__ = [
    "ABORT",
    "AbortableDacSpec",
    "AnalysisError",
    "BOTTOM",
    "CacheIntegrityError",
    "CombinedPacSpec",
    "CompareAndSwapSpec",
    "ConsensusTask",
    "DONE",
    "DacDecisionTask",
    "DacTask",
    "ExplorationBudgetExceeded",
    "Explorer",
    "FetchAndAddSpec",
    "GeneratorProcess",
    "InvalidOperationError",
    "InvalidRequestError",
    "KSetAgreementTask",
    "KernelUnavailableError",
    "LinearizabilityChecker",
    "MConsensusSpec",
    "NIL",
    "NKSetAgreementSpec",
    "NPacSpec",
    "NotLinearizableError",
    "Operation",
    "ProcessAutomaton",
    "ProtocolError",
    "QueueSpec",
    "RegisterSpec",
    "ReproError",
    "RoundRobinScheduler",
    "SchedulingError",
    "SeededScheduler",
    "SequentialSpec",
    "ServerOverloadedError",
    "SetAgreementBundleSpec",
    "SetAgreementPower",
    "SharedObject",
    "SoloScheduler",
    "SpecificationError",
    "StickyBitSpec",
    "StrongSetAgreementSpec",
    "SwapSpec",
    "System",
    "TestAndSetSpec",
    "UNBOUNDED",
    "UniversalConstruction",
    "algorithm2_processes",
    "all_candidates",
    "check_implementation",
    "check_linearizable",
    "check_theorem_3_5",
    "classify",
    "classify_error",
    "error_report",
    "find_critical_configuration",
    "is_legal_history",
    "make_on",
    "make_on_prime",
    "on_power",
    "on_prime_power",
    "op",
    "register_array",
    "separation_pair",
]
