"""Deterministic gene interpretation: any int sequence is a valid run.

Schedules and nondeterministic responses are fuzzed together as one
*gene* sequence: gene ``k`` is an ``(s, c)`` pair of non-negative ints,
interpreted against the live configuration exactly the way AFL-style
fuzzers interpret a byte string against a grammar —

* the moving process is ``enabled[s % len(enabled)]``;
* the adversary's response choice is ``c % len(outcomes)`` among that
  process's outcomes (object nondeterminism, e.g. the 2-SA's "either
  of the first two proposals").

Reduction modulo the *current* option count makes every gene sequence
executable: mutation and delta-debugging never produce an invalid
schedule, only a different one. Interpretation is a pure function of
(target, genes) — no clocks, no global RNG, no hash-order iteration —
so a gene sequence IS a replayable artifact, and the executed
:class:`~repro.analysis.explorer.Edge` list bridges into the strict
scripted replay of :mod:`repro.analysis.replay`.

Coverage is *novel interned configurations*: the target's explorer
interns every configuration it ever sees into the packed kernel's
dense-id row table, so "new id allocated" is exactly "configuration
never visited by any earlier run of this campaign" — the feedback
signal that decides which gene sequences enter the corpus.

The interpreter itself runs on packed ids: each step reads the current
configuration's status row (enabled set, decisions, aborts are all
functions of it, memoized per distinct row), picks an edge from the
kernel's flat adjacency, and only materializes a ``Configuration``
dataclass once — for the run's final state. Successor ids come from the
same full-expansion order as the old object-level loop, so coverage ids
and corpus decisions are bit-identical to the pre-kernel executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.explorer import Configuration, Edge, Explorer
from ..protocols.tasks import SafetyVerdict
from .target import FuzzTarget

#: One fuzz decision: (scheduler gene, response-choice gene).
Gene = Tuple[int, int]
Genes = Tuple[Gene, ...]

#: Finding kinds. ``FindingKind`` is a plain str for picklability.
SAFETY = "safety"
CYCLE = "cycle"


@dataclass(frozen=True)
class GeneRun:
    """The outcome of interpreting one gene sequence.

    ``kind`` is ``"safety"`` (the task's predicate failed at the final
    configuration), ``"cycle"`` (a configuration repeated within the
    run while some mover is still running — the in-run face of a
    livelock), or None (budget exhausted or the run went quiescent).
    ``steps`` counts the genes actually consumed; trailing genes that
    were never interpreted (run ended first) are reported so shrinking
    can drop them wholesale. ``new_coverage`` is the number of
    configurations this run interned for the first time, against the
    campaign-wide seen-set it was executed under.
    """

    edges: Tuple[Edge, ...]
    final: Configuration
    kind: Optional[str]
    verdict: Optional[SafetyVerdict]
    cycle_start: Optional[int]
    steps: int
    new_coverage: int

    @property
    def violating(self) -> bool:
        return self.kind is not None


class FuzzExecutor:
    """Interpret gene sequences against one target's explorer.

    One executor = one :class:`~repro.analysis.explorer.Explorer`, so
    successor memoization and the intern table amortize across the
    whole campaign: re-executing a mutated prefix costs dictionary
    lookups, not transition recomputation.
    """

    def __init__(
        self,
        target: FuzzTarget,
        max_steps: int = 64,
        kernel: Optional[str] = None,
    ) -> None:
        self.target = target
        self.max_steps = max_steps
        self.explorer = Explorer(target.objects, target.processes, kernel=kernel)
        self._initial = self.explorer.initial_configuration()
        self._initial_id = self.explorer.intern_id(self._initial)
        #: status-code row -> memoized task verdict: safety is a pure
        #: function of the status segment, so one predicate call per
        #: distinct row covers every configuration sharing it.
        self._verdicts: Dict[Tuple[int, ...], SafetyVerdict] = {}
        #: Total :meth:`execute` calls over this executor's lifetime —
        #: campaign executions *plus* shrinker probes, so the engine can
        #: report shrink cost as the difference.
        self.executions = 0

    def execute(
        self, genes: Genes, coverage: Optional[Set[int]] = None
    ) -> GeneRun:
        """Run ``genes`` (up to ``max_steps`` of them) from the initial
        configuration. ``coverage`` is the campaign's seen-id set; pass
        None for side-effect-free evaluation (the shrinker does)."""
        self.executions += 1
        explorer = self.explorer
        backend = explorer._backend
        segment_info = explorer._segment_info
        successor_entries = explorer._successor_entries
        task = self.target.task
        inputs = self.target.inputs
        detect_cycles = self.target.detect_cycles
        verdicts = self._verdicts
        cid = self._initial_id
        new_coverage = 0
        if coverage is not None and cid not in coverage:
            coverage.add(cid)
            new_coverage += 1
        visited_at: Dict[int, int] = {cid: 0}
        edges: List[Edge] = []
        kind: Optional[str] = None
        verdict: Optional[SafetyVerdict] = None
        cycle_start: Optional[int] = None
        steps = 0
        for scheduler_gene, choice_gene in genes[: self.max_steps]:
            skey = backend.status_key(cid)
            enabled = segment_info(skey)[2]
            if not enabled:
                break
            pid = enabled[scheduler_gene % len(enabled)]
            options = [
                entry
                for entry in successor_entries(cid)
                if entry[0].pid == pid
            ]
            edge, cid = options[choice_gene % len(options)]
            edges.append(edge)
            steps += 1
            if coverage is not None and cid not in coverage:
                coverage.add(cid)
                new_coverage += 1
            skey = backend.status_key(cid)
            checked = verdicts.get(skey)
            if checked is None:
                decisions, aborted, _ = segment_info(skey)
                checked = task.check_safety(inputs, decisions, aborted)
                verdicts[skey] = checked
            if not checked.ok:
                kind = SAFETY
                verdict = checked
                break
            first_seen = visited_at.get(cid)
            if first_seen is not None:
                # The run returned to an earlier configuration: every
                # pid that moved inside the window was RUNNING then and
                # (statuses being part of the configuration) is RUNNING
                # again now — an adversary looping these genes forever
                # starves it without a decision.
                if detect_cycles:
                    kind = CYCLE
                    cycle_start = first_seen
                    break
            else:
                visited_at[cid] = steps
        return GeneRun(
            edges=tuple(edges),
            final=explorer.interned(cid),
            kind=kind,
            verdict=verdict,
            cycle_start=cycle_start,
            steps=steps,
            new_coverage=new_coverage,
        )
