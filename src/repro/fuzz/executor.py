"""Deterministic gene interpretation: any int sequence is a valid run.

Schedules and nondeterministic responses are fuzzed together as one
*gene* sequence: gene ``k`` is an ``(s, c)`` pair of non-negative ints,
interpreted against the live configuration exactly the way AFL-style
fuzzers interpret a byte string against a grammar —

* the moving process is ``enabled[s % len(enabled)]``;
* the adversary's response choice is ``c % len(outcomes)`` among that
  process's outcomes (object nondeterminism, e.g. the 2-SA's "either
  of the first two proposals").

Reduction modulo the *current* option count makes every gene sequence
executable: mutation and delta-debugging never produce an invalid
schedule, only a different one. Interpretation is a pure function of
(target, genes) — no clocks, no global RNG, no hash-order iteration —
so a gene sequence IS a replayable artifact, and the executed
:class:`~repro.analysis.explorer.Edge` list bridges into the strict
scripted replay of :mod:`repro.analysis.replay`.

Coverage is *novel interned configurations*: the target's explorer
interns every configuration it ever sees into a dense-id
:class:`~repro.analysis.intern.InternTable`, so "new id allocated"
is exactly "configuration never visited by any earlier run of this
campaign" — the feedback signal that decides which gene sequences
enter the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.explorer import Configuration, Edge, Explorer
from ..protocols.tasks import SafetyVerdict
from .target import FuzzTarget

#: One fuzz decision: (scheduler gene, response-choice gene).
Gene = Tuple[int, int]
Genes = Tuple[Gene, ...]

#: Finding kinds. ``FindingKind`` is a plain str for picklability.
SAFETY = "safety"
CYCLE = "cycle"


@dataclass(frozen=True)
class GeneRun:
    """The outcome of interpreting one gene sequence.

    ``kind`` is ``"safety"`` (the task's predicate failed at the final
    configuration), ``"cycle"`` (a configuration repeated within the
    run while some mover is still running — the in-run face of a
    livelock), or None (budget exhausted or the run went quiescent).
    ``steps`` counts the genes actually consumed; trailing genes that
    were never interpreted (run ended first) are reported so shrinking
    can drop them wholesale. ``new_coverage`` is the number of
    configurations this run interned for the first time, against the
    campaign-wide seen-set it was executed under.
    """

    edges: Tuple[Edge, ...]
    final: Configuration
    kind: Optional[str]
    verdict: Optional[SafetyVerdict]
    cycle_start: Optional[int]
    steps: int
    new_coverage: int

    @property
    def violating(self) -> bool:
        return self.kind is not None


class FuzzExecutor:
    """Interpret gene sequences against one target's explorer.

    One executor = one :class:`~repro.analysis.explorer.Explorer`, so
    successor memoization and the intern table amortize across the
    whole campaign: re-executing a mutated prefix costs dictionary
    lookups, not transition recomputation.
    """

    def __init__(self, target: FuzzTarget, max_steps: int = 64) -> None:
        self.target = target
        self.max_steps = max_steps
        self.explorer = Explorer(target.objects, target.processes)
        self._initial = self.explorer.initial_configuration()
        #: Total :meth:`execute` calls over this executor's lifetime —
        #: campaign executions *plus* shrinker probes, so the engine can
        #: report shrink cost as the difference.
        self.executions = 0

    def execute(
        self, genes: Genes, coverage: Optional[Set[int]] = None
    ) -> GeneRun:
        """Run ``genes`` (up to ``max_steps`` of them) from the initial
        configuration. ``coverage`` is the campaign's seen-id set; pass
        None for side-effect-free evaluation (the shrinker does)."""
        self.executions += 1
        explorer = self.explorer
        task = self.target.task
        inputs = self.target.inputs
        detect_cycles = self.target.detect_cycles
        config = self._initial
        new_coverage = 0
        if coverage is not None:
            cid = explorer.intern_id(config)
            if cid not in coverage:
                coverage.add(cid)
                new_coverage += 1
        visited_at: Dict[int, int] = {explorer.intern_id(config): 0}
        edges: List[Edge] = []
        kind: Optional[str] = None
        verdict: Optional[SafetyVerdict] = None
        cycle_start: Optional[int] = None
        steps = 0
        for scheduler_gene, choice_gene in genes[: self.max_steps]:
            enabled = config.enabled()
            if not enabled:
                break
            pid = enabled[scheduler_gene % len(enabled)]
            options = [
                entry
                for entry in explorer.successors(config)
                if entry[0].pid == pid
            ]
            edge, config = options[choice_gene % len(options)]
            edges.append(edge)
            steps += 1
            cid = explorer.intern_id(config)
            if coverage is not None and cid not in coverage:
                coverage.add(cid)
                new_coverage += 1
            checked = task.check_safety(
                inputs, config.decisions(), config.aborted()
            )
            if not checked.ok:
                kind = SAFETY
                verdict = checked
                break
            first_seen = visited_at.get(cid)
            if first_seen is not None:
                # The run returned to an earlier configuration: every
                # pid that moved inside the window was RUNNING then and
                # (statuses being part of the configuration) is RUNNING
                # again now — an adversary looping these genes forever
                # starves it without a decision.
                if detect_cycles:
                    kind = CYCLE
                    cycle_start = first_seen
                    break
            else:
                visited_at[cid] = steps
        return GeneRun(
            edges=tuple(edges),
            final=config,
            kind=kind,
            verdict=verdict,
            cycle_start=cycle_start,
            steps=steps,
            new_coverage=new_coverage,
        )
