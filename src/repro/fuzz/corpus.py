"""Persistent fuzz corpus: content-addressed gene sequences on disk.

The corpus reuses the layout of :mod:`repro.analysis.cache` — one entry
per file under ``<root>/<fp[:2]>/<fp>.json`` — but holds JSON rather
than pickles: a corpus entry is a *seed for future campaigns*, so it
must stay human-inspectable and safe to load from an untrusted checkout
(``json.loads`` executes nothing).

Keying is fully deterministic: the fingerprint is a sha256 over a
canonical JSON rendering of ``(schema, target key, genes)`` — no
``hash()``, no pickle, and tuples and lists fingerprint identically
(entries round-trip through JSON, so a key that was ``("algorithm2",
3, (1, 0, 0))`` on the way in comes back with nested lists) — so the
same discovery always lands in the same file, two
campaigns writing concurrently collide only on identical content, and
"identical corpus directories" is a meaningful bit-level equality check
(the CI fuzz-smoke job diffs them with ``diff -r``).

Entries are loaded back in sorted-fingerprint order: campaign behaviour
depends on the corpus *contents*, never on filesystem enumeration
order.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from .executor import Genes
from .target import TargetSpec

#: Bumped whenever the entry layout changes; part of every fingerprint.
CORPUS_SCHEMA = 1


def _canonical_key(key: TargetSpec) -> List[object]:
    """``key`` as it looks after a JSON round trip (tuples → lists)."""
    return json.loads(json.dumps(list(key), default=str))


def corpus_fingerprint(key: TargetSpec, genes: Genes) -> str:
    """Content address of one corpus entry (target-scoped)."""
    rendered = json.dumps(
        [CORPUS_SCHEMA, _canonical_key(key), [list(g) for g in genes]],
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(rendered.encode()).hexdigest()


@dataclass(frozen=True)
class CorpusStats:
    """Point-in-time shape of one corpus directory."""

    root: str
    entries: int
    total_bytes: int


class FuzzCorpus:
    """On-disk corpus of interesting gene sequences.

    ``root`` defaults to ``$REPRO_FUZZ_CORPUS_DIR`` or
    ``.repro-fuzz-corpus`` under the working directory.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = (
                os.environ.get("REPRO_FUZZ_CORPUS_DIR")
                or ".repro-fuzz-corpus"
            )
        self.root = Path(root)

    def _entry_path(self, fp: str) -> Path:
        return self.root / fp[:2] / f"{fp}.json"

    def add(self, key: TargetSpec, genes: Genes, **meta: object) -> bool:
        """Store one entry (atomic write); True iff it was new."""
        fp = corpus_fingerprint(key, genes)
        path = self._entry_path(fp)
        if path.exists():
            return False
        payload = {
            "schema": CORPUS_SCHEMA,
            "key": list(key),
            "genes": [list(gene) for gene in genes],
            "meta": meta,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return True

    def entries(self, key: TargetSpec) -> List[Genes]:
        """Every stored gene sequence for ``key``, in sorted-fingerprint
        order (deterministic regardless of directory enumeration).
        Corrupt or foreign-schema entries are skipped, never raised."""
        wanted = _canonical_key(key)
        collected: List[Tuple[str, Genes]] = []
        for path in self._entry_files():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if payload.get("schema") != CORPUS_SCHEMA:
                    continue
                if payload.get("key") != wanted:
                    continue
                genes = tuple(
                    (int(s), int(c)) for s, c in payload["genes"]
                )
            except (OSError, ValueError, KeyError, TypeError):
                continue
            collected.append((path.stem, genes))
        collected.sort(key=lambda item: item[0])
        return [genes for _fp, genes in collected]

    def _entry_files(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def stats(self) -> CorpusStats:
        files = self._entry_files()
        total = 0
        for path in files:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CorpusStats(
            root=str(self.root), entries=len(files), total_bytes=total
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entry_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
