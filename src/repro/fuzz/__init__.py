"""Coverage-guided schedule/response fuzzing (``repro fuzz``).

Exhaustive exploration proves the paper's theorems at small ``n``; the
fuzzer extends every safety check beyond exhaustive reach by *sampling*
the same run set Gafni's "set of runs" framing assigns to an object:
seeded random schedules plus adversarial nondeterministic-response
choices, guided by novel-interned-configuration coverage, with every
finding delta-debugged to a minimal schedule and round-tripped through
the strict scripted replay machinery. See ``docs/fuzzing.md``.

Layering:

* :mod:`repro.fuzz.target` — what can be fuzzed (candidates,
  Algorithm 2 instances), rebuildable from portable specs;
* :mod:`repro.fuzz.executor` — deterministic gene interpretation and
  intern-table coverage;
* :mod:`repro.fuzz.corpus` — persistent content-addressed corpus
  (cache-style ``<fp[:2]>/<fp>.json`` layout);
* :mod:`repro.fuzz.shrink` — fixpoint ddmin + strict replay bridge;
* :mod:`repro.fuzz.engine` — seeded shards fanned over the
  verification pool, merged deterministically.
"""

from .corpus import CorpusStats, FuzzCorpus, corpus_fingerprint
from .executor import CYCLE, SAFETY, FuzzExecutor, GeneRun, Genes
from .shrink import replay_shrunk, shrink_genes
from .target import (
    FuzzTarget,
    algorithm2_target,
    candidate_target,
    target_from_spec,
)

__all__ = [
    "CYCLE",
    "SAFETY",
    "CorpusStats",
    "FuzzCorpus",
    "FuzzExecutor",
    "FuzzTarget",
    "GeneRun",
    "Genes",
    "algorithm2_target",
    "candidate_target",
    "corpus_fingerprint",
    "replay_shrunk",
    "shrink_genes",
    "target_from_spec",
]
