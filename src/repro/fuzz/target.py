"""Fuzz targets: any ProcessAutomaton system, named by a portable spec.

A :class:`FuzzTarget` bundles exactly what the explorer needs — objects,
automata, task, inputs — plus two fuzzing-specific knobs:

* ``detect_cycles`` — whether a configuration repeating *within one
  run* counts as a finding. For the candidate suite this is the
  concrete face of a liveness failure (a process takes steps forever
  without deciding); for Algorithm 2 instances it is off, because the
  n-DAC termination rubric deliberately tolerates non-solo spinning.
* ``key`` — a portable spec tuple (``("candidate", index)`` or
  ``("algorithm2", n, inputs)``) from which :func:`target_from_spec`
  rebuilds the target inside a worker process. Explorers and automata
  never cross a process boundary (same rule as
  :mod:`repro.analysis.parallel`), and the key also names the target's
  corpus entries on disk.

``expected_failure`` mirrors :class:`CandidateSystem`: ``"safety"`` /
``"liveness"`` / ``"none"``. The fuzz CLI compares observed findings
against it, so ``repro fuzz`` exits 0 exactly when every target failed
(or survived) the way the paper says it must.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import SpecificationError
from ..objects.spec import SequentialSpec
from ..protocols.tasks import DecisionTask
from ..runtime.process import ProcessAutomaton
from ..types import Value, require

#: A portable target spec: ("candidate", index) | ("algorithm2", n, inputs).
TargetSpec = Tuple


@dataclass
class FuzzTarget:
    """One fuzzable protocol instance plus its correctness contract."""

    name: str
    objects: Dict[str, SequentialSpec]
    processes: List[ProcessAutomaton]
    task: DecisionTask
    inputs: Tuple[Value, ...]
    key: TargetSpec
    detect_cycles: bool = True
    expected_failure: str = "none"
    notes: str = field(default="", repr=False)


def candidate_target(index: int) -> FuzzTarget:
    """The ``index``-th entry of the doomed-candidate suite as a target."""
    from ..protocols.candidates import all_candidates

    candidates = all_candidates()
    require(
        0 <= index < len(candidates),
        SpecificationError,
        f"candidate index {index} out of range 0..{len(candidates) - 1}",
    )
    candidate = candidates[index]
    return FuzzTarget(
        name=candidate.name,
        objects=candidate.objects,
        processes=candidate.processes,
        task=candidate.task,
        inputs=candidate.inputs,
        key=("candidate", index),
        detect_cycles=True,
        expected_failure=candidate.expected_failure,
        notes=candidate.notes,
    )


def algorithm2_target(n: int, inputs: Tuple[Value, ...]) -> FuzzTarget:
    """One Algorithm 2 (Theorem 4.1) instance as a target.

    Cycle detection is off: n-DAC Termination only obliges processes
    under the (a)/(b) rubric, so a raw in-run configuration repeat is
    not a correctness violation for this system.
    """
    from ..core.pac import NPacSpec
    from ..protocols.dac_from_pac import algorithm2_processes
    from ..protocols.tasks import DacDecisionTask

    inputs = tuple(inputs)
    require(
        len(inputs) == n,
        SpecificationError,
        f"algorithm2 target needs {n} inputs, got {len(inputs)}",
    )
    return FuzzTarget(
        name=f"Algorithm 2 @ n={n}, inputs {inputs}",
        objects={"PAC": NPacSpec(n)},
        processes=algorithm2_processes(inputs),
        task=DacDecisionTask(n),
        inputs=inputs,
        key=("algorithm2", n, inputs),
        detect_cycles=False,
        expected_failure="none",
    )


def target_from_spec(spec: TargetSpec) -> FuzzTarget:
    """Rebuild a target from its portable spec (worker-side entry)."""
    kind = spec[0]
    if kind == "candidate":
        return candidate_target(spec[1])
    if kind == "algorithm2":
        return algorithm2_target(spec[1], tuple(spec[2]))
    raise SpecificationError(f"unknown fuzz target spec {spec!r}")
