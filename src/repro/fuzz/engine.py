"""Coverage-guided fuzz campaigns: seeded, sharded, deterministic.

A *campaign* is ``budget`` gene-sequence executions against one target,
partitioned into ``shards`` independent sub-campaigns. Everything is a
pure function of ``(target key, seed, budget, shards, options, initial
corpus)``:

* each shard's RNG is seeded from a sha256 over ``(seed, shard, target
  key)`` — never from ``hash()``, wall clocks, or ``os.urandom``;
* the shard partition depends only on ``budget`` and ``shards`` —
  **not** on ``jobs`` — so fanning shards over a
  :class:`~repro.analysis.parallel.VerificationPool` with any worker
  count produces the same shard results, merged in shard order
  (``--jobs 1`` vs ``--jobs 2`` is bit-identical by construction);
* coverage feedback is the explorer's intern table: a run that
  allocates new configuration ids is *interesting* and its genes join
  the corpus, weighting future mutations toward the frontier.

Workers rebuild their target from its portable spec (explorers never
cross process boundaries) and return plain picklable records;
shrinking and the strict replay check run inside the shard, so a
finding arrives already minimized and replay-verified.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..analysis.explorer import Edge
from ..analysis.parallel import VerificationPool, WorkItem
from ..errors import AnalysisError
from .corpus import FuzzCorpus, corpus_fingerprint
from .executor import CYCLE, SAFETY, FuzzExecutor, Genes
from .shrink import replay_shrunk, shrink_genes
from .target import TargetSpec, target_from_spec

#: Gene component ranges for fresh material. Scheduler genes span more
#: than any realistic enabled-set size, choice genes more than any
#: spec's outcome fan-out; both only ever act through ``% len(...)``.
_SCHED_SPAN = 64
_CHOICE_SPAN = 8


def shard_seed(seed: int, shard: int, key: TargetSpec) -> int:
    """The shard's RNG seed: sha256-derived, ``PYTHONHASHSEED``-free."""
    digest = hashlib.sha256(
        repr((int(seed), int(shard), tuple(key))).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def _fresh(rng: random.Random, max_steps: int) -> Genes:
    length = rng.randint(1, max_steps)
    return tuple(
        (rng.randrange(_SCHED_SPAN), rng.randrange(_CHOICE_SPAN))
        for _ in range(length)
    )


def mutate(
    rng: random.Random, pool: Sequence[Genes], max_steps: int
) -> Genes:
    """One mutated gene sequence: fresh material, or a corpus parent
    run through truncate / extend / point-mutate / splice."""
    if not pool or rng.random() < 0.3:
        return _fresh(rng, max_steps)
    parent = pool[rng.randrange(len(pool))]
    if not parent:
        return _fresh(rng, max_steps)
    operator = rng.randrange(4)
    if operator == 0:  # truncate
        return parent[: rng.randrange(1, len(parent) + 1)]
    if operator == 1:  # extend
        return parent + _fresh(rng, max(1, max_steps - len(parent)))
    if operator == 2:  # point mutation
        index = rng.randrange(len(parent))
        gene = (rng.randrange(_SCHED_SPAN), rng.randrange(_CHOICE_SPAN))
        return parent[:index] + (gene,) + parent[index + 1 :]
    other = pool[rng.randrange(len(pool))]  # splice
    return (
        parent[: rng.randrange(1, len(parent) + 1)]
        + other[rng.randrange(len(other) + 1) :]
    )


def run_shard(
    spec: TargetSpec,
    seed: int,
    shard: int,
    executions: int,
    max_steps: int = 64,
    shrink: bool = True,
    stop_on_finding: bool = True,
    initial_corpus: Tuple[Genes, ...] = (),
) -> Dict[str, object]:
    """One shard's sub-campaign (module-level: pool-ready).

    Returns a plain picklable record: executions performed, coverage
    gained, the coverage growth curve (``(execution, coverage)`` at
    every execution that discovered new configurations), new corpus
    entries in discovery order, and findings that are already shrunk
    and replay-verified.
    """
    target = target_from_spec(spec)
    executor = FuzzExecutor(target, max_steps=max_steps)
    rng = random.Random(shard_seed(seed, shard, spec))
    coverage: set = set()
    pool: List[Genes] = [tuple(genes) for genes in initial_corpus]
    new_entries: List[Genes] = []
    findings: List[Dict[str, object]] = []
    growth: List[Tuple[int, int]] = []
    performed = 0
    first_finding: Optional[int] = None
    for index in range(executions):
        genes = mutate(rng, pool, max_steps)
        run = executor.execute(genes, coverage=coverage)
        performed += 1
        if run.new_coverage > 0:
            growth.append((index, len(coverage)))
            if run.edges:
                consumed = genes[: run.steps]
                pool.append(consumed)
                new_entries.append(consumed)
        if run.kind is None:
            continue
        if first_finding is None:
            first_finding = index
        finding: Dict[str, object] = {
            "kind": run.kind,
            "execution": index,
            "genes": genes[: run.steps],
            "schedule": run.edges,
            "violations": (
                run.verdict.violations if run.verdict is not None else ()
            ),
            "cycle_start": run.cycle_start,
            "shrunk_genes": None,
            "shrunk_schedule": None,
            "shrunk_violations": None,
            "replay_matches": None,
            "replay_mismatches": (),
        }
        if shrink:
            shrunk = shrink_genes(executor, genes[: run.steps], run.kind)
            shrunk_run, report = replay_shrunk(executor, shrunk)
            finding["shrunk_genes"] = shrunk
            finding["shrunk_schedule"] = shrunk_run.edges
            finding["shrunk_violations"] = (
                shrunk_run.verdict.violations
                if shrunk_run.verdict is not None
                else ()
            )
            finding["replay_matches"] = report.matches
            finding["replay_mismatches"] = report.mismatches
        findings.append(finding)
        if stop_on_finding:
            break
    # Published once per shard, not per execution: the shard runs under
    # the pool's scoped registry (inline or in a worker), so these fold
    # back into the campaign's metrics in shard-submission order.
    obs.counter("fuzz.executions", performed)
    obs.counter("fuzz.shrink_probes", executor.executions - performed)
    obs.counter("fuzz.new_coverage", len(coverage))
    obs.counter("fuzz.corpus_entries", len(new_entries))
    obs.counter("fuzz.findings", len(findings))
    return {
        "shard": shard,
        "executions": performed,
        "new_coverage": len(coverage),
        "growth": growth,
        "corpus": new_entries,
        "findings": findings,
        "first_finding": first_finding,
    }


@dataclass(frozen=True)
class FuzzFinding:
    """One violation, as discovered and as shrunk.

    ``execution`` is the campaign-global execution index (shard offset
    plus the shard-local index). ``replay_matches`` records the strict
    scripted round trip of the *shrunk* schedule (None when shrinking
    was disabled).
    """

    kind: str
    shard: int
    execution: int
    genes: Genes
    schedule: Tuple[Edge, ...]
    violations: Tuple[str, ...]
    cycle_start: Optional[int]
    shrunk_genes: Optional[Genes]
    shrunk_schedule: Optional[Tuple[Edge, ...]]
    shrunk_violations: Optional[Tuple[str, ...]]
    replay_matches: Optional[bool]
    replay_mismatches: Tuple[str, ...]


@dataclass(frozen=True)
class FuzzReport:
    """The deterministic outcome of one campaign."""

    key: TargetSpec
    target_name: str
    seed: int
    budget: int
    shards: int
    max_steps: int
    executions: int
    findings: Tuple[FuzzFinding, ...]
    coverage: int
    corpus_added: int
    corpus_seeded: int
    first_finding_execution: Optional[int]

    def observed_failure(self) -> str:
        """``"safety"`` / ``"liveness"`` / ``"none"``, by first finding
        (comparable with ``CandidateSystem.expected_failure``)."""
        if not self.findings:
            return "none"
        first = min(self.findings, key=lambda f: f.execution)
        return "liveness" if first.kind == CYCLE else SAFETY


def _shard_budgets(budget: int, shards: int) -> List[int]:
    base, remainder = divmod(budget, shards)
    return [
        base + (1 if shard < remainder else 0) for shard in range(shards)
    ]


def fuzz_campaign(
    spec: TargetSpec,
    seed: int = 0,
    budget: int = 200,
    shards: Optional[int] = None,
    jobs: int = 1,
    max_steps: int = 64,
    shrink: bool = True,
    stop_on_finding: bool = True,
    corpus: Optional[FuzzCorpus] = None,
) -> FuzzReport:
    """Run one campaign against the target named by ``spec``.

    The shard partition is a function of ``budget`` and ``shards``
    alone; ``jobs`` only chooses how many worker processes execute
    them, so any jobs value yields the same report. With a ``corpus``,
    stored entries for this target seed every shard's mutation pool,
    and each shard's interesting discoveries are persisted back
    (content-addressed, so re-runs and sibling shards dedupe to
    identical files).
    """
    spec = tuple(spec)
    target = target_from_spec(spec)  # validates the spec up front
    if budget < 1:
        raise AnalysisError(f"fuzz budget must be >= 1, got {budget}")
    if shards is None:
        shards = max(1, min(4, budget))
    budgets = _shard_budgets(budget, shards)
    initial: Tuple[Genes, ...] = ()
    if corpus is not None:
        initial = tuple(corpus.entries(spec))
    items = [
        WorkItem(
            key=shard,
            fn=run_shard,
            args=(spec, seed, shard, budgets[shard]),
            kwargs={
                "max_steps": max_steps,
                "shrink": shrink,
                "stop_on_finding": stop_on_finding,
                "initial_corpus": initial,
            },
        )
        for shard in range(shards)
        if budgets[shard] > 0
    ]
    obs.counter("fuzz.campaigns")
    results = VerificationPool(jobs=jobs).run(items)
    offsets = []
    offset = 0
    for shard_budget in budgets:
        offsets.append(offset)
        offset += shard_budget
    findings: List[FuzzFinding] = []
    executions = 0
    coverage = 0
    corpus_added = 0
    seen_entries = set()
    first_finding: Optional[int] = None
    for result in results:
        if not result.ok:
            raise AnalysisError(
                f"fuzz shard {result.key} failed: "
                f"{result.failure.render()}"
            )
        record = result.value
        shard = record["shard"]
        executions += record["executions"]
        coverage += record["new_coverage"]
        # Trace-only shard telemetry, emitted here in the parent (shard
        # workers cannot write the trace) in deterministic shard order;
        # the growth curve is mapped to campaign-global execution
        # indices so curves from different jobs values line up.
        obs.event(
            "fuzz.shard",
            target=target.name,
            shard=shard,
            executions=record["executions"],
            new_coverage=record["new_coverage"],
            findings=len(record["findings"]),
        )
        if record["growth"]:
            obs.event(
                "fuzz.growth",
                target=target.name,
                shard=shard,
                curve=[
                    [offsets[shard] + index, total]
                    for index, total in record["growth"]
                ],
            )
        for genes in record["corpus"]:
            fp = corpus_fingerprint(spec, genes)
            if fp in seen_entries:
                continue
            seen_entries.add(fp)
            if corpus is not None:
                if corpus.add(spec, genes, seed=seed, shard=shard):
                    corpus_added += 1
            else:
                corpus_added += 1
        if record["first_finding"] is not None:
            candidate = offsets[shard] + record["first_finding"]
            if first_finding is None or candidate < first_finding:
                first_finding = candidate
        for raw in record["findings"]:
            findings.append(
                FuzzFinding(
                    kind=raw["kind"],
                    shard=shard,
                    execution=offsets[shard] + raw["execution"],
                    genes=tuple(raw["genes"]),
                    schedule=tuple(raw["schedule"]),
                    violations=tuple(raw["violations"]),
                    cycle_start=raw["cycle_start"],
                    shrunk_genes=(
                        tuple(raw["shrunk_genes"])
                        if raw["shrunk_genes"] is not None
                        else None
                    ),
                    shrunk_schedule=(
                        tuple(raw["shrunk_schedule"])
                        if raw["shrunk_schedule"] is not None
                        else None
                    ),
                    shrunk_violations=(
                        tuple(raw["shrunk_violations"])
                        if raw["shrunk_violations"] is not None
                        else None
                    ),
                    replay_matches=raw["replay_matches"],
                    replay_mismatches=tuple(raw["replay_mismatches"]),
                )
            )
    return FuzzReport(
        key=spec,
        target_name=target.name,
        seed=seed,
        budget=budget,
        shards=shards,
        max_steps=max_steps,
        executions=executions,
        findings=tuple(findings),
        coverage=coverage,
        corpus_added=corpus_added,
        corpus_seeded=len(initial),
        first_finding_execution=first_finding,
    )
