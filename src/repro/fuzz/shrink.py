"""Delta-debugging shrinker: minimal gene sequences, replayable output.

:func:`shrink_genes` reduces a violating gene sequence while preserving
its finding *kind* (``"safety"`` stays a safety violation, ``"cycle"``
stays an in-run livelock). Because genes are interpreted modulo the
live option counts (see :mod:`repro.fuzz.executor`), every candidate
reduction is executable — the predicate is simply "re-run it and check
the kind", never "is this schedule well-formed".

The algorithm is ddmin-style, driven to a *fixpoint*:

1. truncate to the genes actually consumed (the executor reports it);
2. delete contiguous chunks, window sizes halving from ``len // 2``
   down to 1, greedily keeping any deletion that preserves the kind;
3. canonicalize surviving genes toward ``(0, 0)`` componentwise.

The passes repeat until one full sweep changes nothing. Termination is
structural (every accepted step strictly shrinks the sequence or
lexicographically lowers it), and the fixpoint is what makes shrinking
**idempotent**: ``shrink(shrink(g)) == shrink(g)``, because the second
call re-tries exactly the transformations the first call already
exhausted. Both properties are pinned by
``tests/property/test_hypothesis_fuzz_shrink.py``.

Shrinking yields genes; :func:`replay_shrunk` turns the shrunk run's
edge list into the strict scripted round trip of
:mod:`repro.analysis.replay` (``oracle_script`` →
``replay_counterexample`` → step-by-step diff), so every shrunk
counterexample is a byte-replayable artifact, not just a smaller input.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..analysis.replay import ReplayReport, verify_replay
from .executor import FuzzExecutor, GeneRun, Genes


def _matches(executor: FuzzExecutor, genes: Genes, kind: str) -> bool:
    return executor.execute(genes).kind == kind


def shrink_genes(
    executor: FuzzExecutor, genes: Genes, kind: Optional[str] = None
) -> Genes:
    """The fixpoint reduction of ``genes`` preserving finding ``kind``.

    ``kind`` defaults to the sequence's own finding kind; passing a
    non-violating sequence returns it truncated but otherwise unchanged
    (there is nothing to preserve).
    """
    genes = tuple(tuple(gene) for gene in genes)
    run = executor.execute(genes)
    if kind is None:
        kind = run.kind
    if kind is None:
        return genes[: run.steps]
    genes = genes[: run.steps]
    changed = True
    while changed:
        changed = False
        # Pass 1: chunk deletion, coarse to fine.
        size = max(1, len(genes) // 2)
        while size >= 1:
            start = 0
            while start + size <= len(genes):
                trial = genes[:start] + genes[start + size :]
                if _matches(executor, trial, kind):
                    genes = trial
                    changed = True
                else:
                    start += size
            size //= 2
        # Pass 2: canonicalize gene components toward zero.
        for index, (scheduler_gene, choice_gene) in enumerate(genes):
            for variant in (
                (0, 0),
                (0, choice_gene),
                (scheduler_gene, 0),
            ):
                if variant == (scheduler_gene, choice_gene):
                    continue
                trial = genes[:index] + (variant,) + genes[index + 1 :]
                if _matches(executor, trial, kind):
                    genes = trial
                    changed = True
                    break
        # Pass 3: drop genes the shrunk run no longer consumes.
        steps = executor.execute(genes).steps
        if steps < len(genes):
            genes = genes[:steps]
            changed = True
    return genes


def replay_shrunk(
    executor: FuzzExecutor, genes: Genes
) -> Tuple[GeneRun, ReplayReport]:
    """Execute ``genes`` and round-trip the run through strict replay.

    The returned report's ``matches`` is the replayability guarantee:
    the live :class:`~repro.runtime.system.System`, driven by scripted
    adversaries in strict mode, reproduced the shrunk schedule edge for
    edge (any divergence raises or is listed in ``mismatches``).
    """
    run = executor.execute(genes)
    report = verify_replay(executor.explorer, run.edges)
    return run, report
