"""Small AST helpers shared by the lint rules (stdlib ``ast`` only)."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple


def walk_function_body(
    fn: ast.AST, include_nested: bool = False
) -> Iterator[ast.AST]:
    """Walk the nodes that belong to ``fn`` itself.

    By default nested function/class definitions are not descended into
    — a ``yield`` inside a nested generator belongs to that generator,
    not to ``fn``.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not include_nested and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def direct_yields(fn: ast.AST) -> List[ast.AST]:
    """The Yield / YieldFrom nodes belonging directly to ``fn``."""
    return [
        node
        for node in walk_function_body(fn)
        if isinstance(node, (ast.Yield, ast.YieldFrom))
    ]


def is_program_coroutine(fn: ast.AST) -> bool:
    """Is ``fn`` a protocol program coroutine?

    Heuristic: a generator that either yields an ``Invoke(...)`` action
    directly or delegates with ``yield from`` (the idiom for composing
    program fragments, e.g. embedded scans). Pure value generators —
    input enumerators, workload streams — yield plain values and no
    delegation, so they are left alone.
    """
    for node in direct_yields(fn):
        if isinstance(node, ast.YieldFrom):
            return True
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "Invoke"
        ):
            return True
    return False


def local_bindings(fn: ast.AST) -> Set[str]:
    """Every name bound inside ``fn``: parameters, assignment targets,
    loop/with/except targets, walruses, imports, nested defs.

    A name in this set is the function's own (or its sanctioned
    per-process scratchpad passed as a parameter); anything mutated
    outside it is closed-over or global state.
    """
    bound: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            bound.add(arg.arg)

    def bind_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind_target(element)
        elif isinstance(target, ast.Starred):
            bind_target(target.value)
        # Attribute / Subscript targets do not bind a new name.

    for node in walk_function_body(fn, include_nested=True):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            bind_target(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind_target(node.target)
        elif isinstance(node, ast.NamedExpr):
            bind_target(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind_target(item.optional_vars)
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                bound.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.comprehension,)):
            bind_target(node.target)
    return bound


def root_name(expr: ast.AST) -> Optional[str]:
    """The root ``Name`` of an attribute/subscript/call chain, if any.

    ``responses[pid].append`` → ``responses``; ``self.log`` → ``self``.
    """
    cursor = expr
    while isinstance(cursor, (ast.Attribute, ast.Subscript, ast.Call)):
        cursor = cursor.func if isinstance(cursor, ast.Call) else cursor.value
    if isinstance(cursor, ast.Name):
        return cursor.id
    return None


def dotted_call(call: ast.Call) -> Optional[Tuple[str, str]]:
    """``module.fn(...)`` → ("module", "fn") for plain two-part calls."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    return None


def annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    """Does an annotation denote a set type (``Set[...]``, ``set``, …)?"""
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in {"Set", "FrozenSet", "MutableSet", "AbstractSet"}
    if isinstance(node, ast.Name):
        return node.id in {
            "set",
            "frozenset",
            "Set",
            "FrozenSet",
            "MutableSet",
            "AbstractSet",
        }
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return any(
            text.startswith(prefix)
            for prefix in ("Set[", "FrozenSet[", "set[", "frozenset[")
        ) or text in {"set", "frozenset"}
    return False


def set_typed_names(module: ast.Module) -> Tuple[Set[str], Set[str]]:
    """Names and attribute names annotated as sets anywhere in the module.

    Covers variable annotations, dataclass fields (class-body
    annotations become attribute names), and annotated parameters. Used
    by R001's set-iteration check; same-module only — the linter does
    not chase imports.
    """
    names: Set[str] = set()
    attrs: Set[str] = set()
    for node in ast.walk(module):
        if isinstance(node, ast.AnnAssign) and annotation_is_set(node.annotation):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
                attrs.add(node.target.id)
            elif isinstance(node.target, ast.Attribute):
                attrs.add(node.target.attr)
        elif isinstance(node, ast.arg) and annotation_is_set(node.annotation):
            names.add(node.arg)
    return names, attrs


def iteration_sites(fn_or_module: ast.AST) -> Iterator[ast.AST]:
    """Every expression something iterates over: ``for`` loops and
    comprehension generators."""
    for node in ast.walk(fn_or_module):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, ast.comprehension):
            yield node.iter
