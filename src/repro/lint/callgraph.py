"""Phase 2 plumbing: the project-wide symbol table and call graph.

:class:`ProjectIndex` merges every :class:`repro.lint.index.FileIndex`
of one lint run into a queryable whole: dotted module names map to
files, ``(module, qualname)`` keys map to functions, and unresolved
:class:`~repro.lint.index.CallSite` references resolve to those keys
through the per-file import maps. Resolution is deliberately
best-effort — a call the resolver cannot attribute (stdlib, dynamic
dispatch, higher-order values) simply resolves to ``None`` and the
interprocedural rules stay silent about it. What *is* resolved is
resolved deterministically: module-name collisions break by sorted
display path, and every iteration order below is sorted.

The taint/impurity/shared-write fixpoints over this graph live in
:mod:`repro.lint.taint`; :class:`ProjectIndex` memoizes their results
so several rules can share one computation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .index import FileIndex, FunctionInfo

#: A function's project-wide identity.
FunctionKey = Tuple[str, str]  # (module dotted name, qualname)


class ProjectIndex:
    """Every indexed file of one lint run, cross-referenced."""

    def __init__(self, files: Sequence[FileIndex]) -> None:
        self.files: Tuple[FileIndex, ...] = tuple(
            sorted(files, key=lambda f: f.display)
        )
        self.modules: Dict[str, FileIndex] = {}
        for file in self.files:
            # First (sorted) file wins a name collision — deterministic.
            self.modules.setdefault(file.module, file)
        self.functions: Dict[FunctionKey, Tuple[FileIndex, FunctionInfo]] = {}
        for file in self.files:
            if self.modules.get(file.module) is not file:
                continue
            for fn in file.functions:
                self.functions.setdefault((file.module, fn.qualname), (file, fn))
        self._analyses: Dict[str, Mapping] = {}

    # -- lookups ---------------------------------------------------------

    def function(
        self, key: FunctionKey
    ) -> Optional[Tuple[FileIndex, FunctionInfo]]:
        return self.functions.get(key)

    def sorted_function_keys(self) -> List[FunctionKey]:
        return sorted(self.functions)

    def iter_files(self) -> Iterator[FileIndex]:
        return iter(self.files)

    def suppresses(self, display: str, line: int, rule_id: str) -> bool:
        for file in self.files:
            if file.display == display:
                return file.suppresses(line, rule_id)
        return False

    # -- call resolution -------------------------------------------------

    def _resolve_target(self, target: str) -> Optional[FunctionKey]:
        """``"pkg.mod.fn"`` -> the function key, if the module is indexed."""
        parts = target.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            rest = parts[split:]
            file = self.modules.get(module)
            if file is None:
                continue
            if len(rest) == 1:
                key = (module, rest[0])
                if key in self.functions:
                    return key
            return None
        return None

    def resolve_call(
        self, caller_file: FileIndex, caller: FunctionInfo, ref: Tuple[str, ...]
    ) -> Optional[FunctionKey]:
        """The :data:`FunctionKey` a call site reference points at, if any."""
        kind = ref[0]
        if kind == "self":
            if caller.class_name is None:
                return None
            key = (caller_file.module, f"{caller.class_name}.{ref[1]}")
            return key if key in self.functions else None
        if kind == "name":
            name = ref[1]
            target = caller_file.imports.get(name)
            if target is not None:
                return self._resolve_target(target)
            key = (caller_file.module, name)
            return key if key in self.functions else None
        if kind == "attr":
            owner, attr = ref[1], ref[2]
            target = caller_file.imports.get(owner)
            if target is None:
                return None
            # ``from pkg import helpers`` + ``helpers.fn(...)``, or
            # ``import pkg.helpers as helpers``.
            file = self.modules.get(target)
            if file is not None:
                key = (target, attr)
                return key if key in self.functions else None
            return self._resolve_target(f"{target}.{attr}")
        return None

    def callees(
        self, key: FunctionKey
    ) -> Iterator[Tuple[FunctionKey, "CallSiteView"]]:
        """Resolved callees of ``key``, in source order."""
        entry = self.functions.get(key)
        if entry is None:
            return
        file, fn = entry
        for site in fn.calls:
            callee = self.resolve_call(file, fn, site.ref)
            if callee is not None:
                yield callee, site

    # -- memoized project analyses ---------------------------------------

    def analysis(self, name: str, compute) -> Mapping:
        if name not in self._analyses:
            self._analyses[name] = compute(self)
        return self._analyses[name]


#: Alias documenting what :meth:`ProjectIndex.callees` yields alongside
#: the key — the raw :class:`repro.lint.index.CallSite`.
CallSiteView = "repro.lint.index.CallSite"
