"""The interprocedural fixpoints behind the R10x rule family.

Each analysis is a monotone fixpoint over the project call graph,
growing from the per-file **seeds** recorded at index time
(:mod:`repro.lint.index`). Every verdict carries a *witness chain* —
the path of functions from the flagged one down to the seed line — so
a finding can say not just "this helper is tainted" but *why*, across
modules.

Determinism: functions are visited in sorted key order on every round
and a verdict, once assigned, is never replaced — so the witness chain
a finding renders is byte-stable across runs, ``--jobs`` values and
cache states.

Analyses:

* :func:`tainted_returns` — functions whose **return value** derives
  from unseeded ``random.*``, a clock read, or ``id()``; propagated
  through the ``return_taint_calls`` symbols of the local dataflow
  summary (R101).
* :func:`shared_writers` — functions that write module-global /
  closed-over state, directly or via any callee (R102, R104).
* :func:`self_writers` — methods that mutate their instance, directly
  or via further ``self.*`` calls (R102: a program coroutine calling
  ``self.helper()`` that stores on ``self`` launders hidden shared
  state past the per-file R002).
* :func:`impure_functions` — functions that perform I/O, write shared
  state, or consume nondeterminism, transitively (R104).

Seeds suppressed at their source line (``# repro: noqa[R001]`` on a
sanctioned clock read, say) never enter a fixpoint — see
``SUPPRESSION_FAMILIES`` in :mod:`repro.lint.index`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from .callgraph import FunctionKey, ProjectIndex
from .index import FunctionInfo, Seed


@dataclass(frozen=True)
class Verdict:
    """One function's positive analysis result plus its evidence."""

    key: FunctionKey
    #: Human rendering of the originating seed, e.g.
    #: ``"time.time() at src/x.py:12"``.
    seed: str
    #: Function names from the seed's owner up to (excluding) ``key``'s
    #: callers — rendered into "via a -> b" chains in findings.
    chain: Tuple[str, ...]

    def render_chain(self) -> str:
        if len(self.chain) <= 1:
            return self.seed
        path = " -> ".join(reversed(self.chain))
        return f"{self.seed} via {path}"


def _label(key: FunctionKey) -> str:
    module, qualname = key
    return f"{module}.{qualname}"


def _seed_desc(project: ProjectIndex, key: FunctionKey, seed: Seed) -> str:
    entry = project.function(key)
    display = entry[0].display if entry else key[0]
    return f"{seed.desc} at {display}:{seed.lineno}"


def _fixpoint(
    project: ProjectIndex,
    direct: Callable[[FunctionInfo], Optional[Seed]],
    edges: Callable[[FunctionKey], Tuple[FunctionKey, ...]],
) -> Mapping[FunctionKey, Verdict]:
    """Grow ``direct`` seeds along ``edges`` until nothing changes."""
    verdicts: Dict[FunctionKey, Verdict] = {}
    keys = project.sorted_function_keys()
    for key in keys:
        _file, fn = project.functions[key]
        seed = direct(fn)
        if seed is not None:
            verdicts[key] = Verdict(
                key=key,
                seed=_seed_desc(project, key, seed),
                chain=(_label(key),),
            )
    changed = True
    while changed:
        changed = False
        for key in keys:
            if key in verdicts:
                continue
            for callee in edges(key):
                got = verdicts.get(callee)
                if got is not None:
                    verdicts[key] = Verdict(
                        key=key,
                        seed=got.seed,
                        chain=got.chain + (_label(key),),
                    )
                    changed = True
                    break
    return verdicts


def _all_callees(project: ProjectIndex):
    cache: Dict[FunctionKey, Tuple[FunctionKey, ...]] = {}

    def edges(key: FunctionKey) -> Tuple[FunctionKey, ...]:
        if key not in cache:
            seen = []
            for callee, _site in project.callees(key):
                if callee != key and callee not in seen:
                    seen.append(callee)
            cache[key] = tuple(seen)
        return cache[key]

    return edges


def tainted_returns(
    project: ProjectIndex,
) -> Mapping[FunctionKey, Verdict]:
    """Functions whose return value is nondeterministic (R101)."""

    def compute(project: ProjectIndex):
        resolved_return_calls: Dict[
            FunctionKey, Tuple[FunctionKey, ...]
        ] = {}
        for key in project.sorted_function_keys():
            file, fn = project.functions[key]
            callees = []
            for ref in fn.return_taint_calls:
                callee = project.resolve_call(file, fn, ref)
                if callee is not None and callee != key:
                    if callee not in callees:
                        callees.append(callee)
            resolved_return_calls[key] = tuple(callees)

        def direct(fn: FunctionInfo) -> Optional[Seed]:
            if fn.return_taint_direct and fn.taint_seeds:
                return fn.taint_seeds[0]
            if fn.return_taint_direct:
                return Seed(fn.lineno, "a nondeterministic expression")
            return None

        return _fixpoint(
            project, direct, lambda key: resolved_return_calls[key]
        )

    return project.analysis("tainted_returns", compute)


def shared_writers(project: ProjectIndex) -> Mapping[FunctionKey, Verdict]:
    """Functions reaching a module-global / closed-over write (R102)."""

    def compute(project: ProjectIndex):
        return _fixpoint(
            project,
            lambda fn: fn.shared_seeds[0] if fn.shared_seeds else None,
            _all_callees(project),
        )

    return project.analysis("shared_writers", compute)


def self_writers(project: ProjectIndex) -> Mapping[FunctionKey, Verdict]:
    """Methods that mutate their instance, through ``self.*`` chains."""

    def compute(project: ProjectIndex):
        cache: Dict[FunctionKey, Tuple[FunctionKey, ...]] = {}

        def self_edges(key: FunctionKey) -> Tuple[FunctionKey, ...]:
            if key not in cache:
                seen = []
                for callee, site in project.callees(key):
                    if site.ref[0] == "self" and callee != key:
                        if callee not in seen:
                            seen.append(callee)
                cache[key] = tuple(seen)
            return cache[key]

        return _fixpoint(
            project,
            lambda fn: fn.self_seeds[0] if fn.self_seeds else None,
            self_edges,
        )

    return project.analysis("self_writers", compute)


def impure_functions(project: ProjectIndex) -> Mapping[FunctionKey, Verdict]:
    """Functions that do I/O, shared writes, or nondeterminism (R104)."""

    def compute(project: ProjectIndex):
        def direct(fn: FunctionInfo) -> Optional[Seed]:
            for seeds in (fn.io_seeds, fn.shared_seeds, fn.taint_seeds):
                if seeds:
                    return seeds[0]
            return None

        return _fixpoint(project, direct, _all_callees(project))

    return project.analysis("impure_functions", compute)
