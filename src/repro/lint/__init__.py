"""Protocol-aware static analysis: the replayability contract, enforced.

The reproduction's value rests on replayable adversarial runs — every
schedule and oracle choice the explorer finds must replay bit-for-bit,
and protocol programs must confine shared state to ``yield
Invoke(...)`` steps the way the model assumes. ``repro.lint`` checks
those invariants with a two-phase engine: per-file AST rules, then
interprocedural rules over the merged project call graph (see
``docs/lint.md`` for the architecture).

=====  ========  ====================================================
Rule   Severity  Invariant
=====  ========  ====================================================
R001   error     determinism: no global RNG, clocks, ``id()``, or
                 raw-set iteration in replay-critical code
R002   error     programs reach shared state only via yield Invoke
R003   warning   no yield-free unbounded loops in protocol programs
R004   error     SequentialSpec transitions are pure
R005   warning   adversaries draw only from constructor-seeded RNGs
R006   error     Scripted* replay classes support strict replay
R007   warning   every ``# repro: noqa`` still suppresses something
R101   error     determinism taint: nondeterministic values tracked
                 through returns/calls into replay-critical roles
R102   error     transitive shared access: programs reaching writes
                 through helper chains
R104   error     transitive spec purity: spec transitions calling
                 impure helpers
R108   error     yield discipline: discarded coroutine calls and
                 dead-yield loops
=====  ========  ====================================================

Run ``python -m repro lint`` (or ``repro-lint``); suppress a single
line with ``# repro: noqa[R00x] justification``. See ``docs/lint.md``.
"""

from .engine import (
    Finding,
    LintReport,
    ModuleContext,
    ProjectRule,
    Rule,
    all_rules,
    lint_paths,
    register,
)
from .sarif import render_sarif

__all__ = [
    "Finding",
    "LintReport",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_paths",
    "register",
    "render_sarif",
]
