"""Protocol-aware static analysis: the replayability contract, enforced.

The reproduction's value rests on replayable adversarial runs — every
schedule and oracle choice the explorer finds must replay bit-for-bit,
and protocol programs must confine shared state to ``yield
Invoke(...)`` steps the way the model assumes. ``repro.lint`` checks
those invariants mechanically, as six AST rules:

=====  ========  ====================================================
Rule   Severity  Invariant
=====  ========  ====================================================
R001   error     determinism: no global RNG, clocks, ``id()``, or
                 raw-set iteration in replay-critical code
R002   error     programs reach shared state only via yield Invoke
R003   warning   no yield-free unbounded loops in protocol programs
R004   error     SequentialSpec transitions are pure
R005   warning   adversaries draw only from constructor-seeded RNGs
R006   error     Scripted* replay classes support strict replay
=====  ========  ====================================================

Run ``python -m repro lint`` (or ``repro-lint``); suppress a single
line with ``# repro: noqa[R00x] justification``. See ``docs/lint.md``.
"""

from .engine import (
    Finding,
    LintReport,
    ModuleContext,
    Rule,
    all_rules,
    lint_paths,
    register,
)

__all__ = [
    "Finding",
    "LintReport",
    "ModuleContext",
    "Rule",
    "all_rules",
    "lint_paths",
    "register",
]
