"""The ``repro.lint`` rule engine: AST walks, findings, suppressions.

The linter enforces the *replayability contract* the bivalency results
rest on (see ``docs/lint.md`` and the "Replayability contract" section
of ``docs/model.md``): schedules and oracle choices must replay
bit-for-bit, protocol programs must confine shared state to
``yield Invoke(...)`` steps, and sequential specs must stay pure. Each
invariant is one :class:`Rule`; the engine parses every file once and
hands the same :class:`ModuleContext` to every registered rule.

Suppressions are inline comments::

    risky_line()  # repro: noqa[R001] justification goes here
    other_line()  # repro: noqa — suppress every rule on this line

A suppressed finding is dropped from the active list but kept in the
report (``--show-suppressed`` prints them), so suppressions stay
auditable. Stdlib-only by design: ``ast`` + ``re``, no new deps.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: Severity levels, in increasing order of gravity.
SEVERITIES = ("warning", "error")

#: Path segments that assign a module its protocol "role". Fixture
#: trees mirror these segment names so rules scope identically there.
ROLES = (
    "protocols",
    "analysis",
    "runtime",
    "objects",
    "core",
    "workloads",
    "lint",
    "fuzz",
    "obs",
)

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule_id} "
            f"{self.severity}: {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "file": self.path,
            "line": self.line,
            "message": self.message,
        }


class ModuleContext:
    """Everything a rule needs to know about one parsed source file."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.role: Optional[str] = self._infer_role(path)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @staticmethod
    def _infer_role(path: Path) -> Optional[str]:
        role = None
        for part in path.parts:
            if part in ROLES:
                role = part
        return role

    # -- shared AST services -------------------------------------------------

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """child node → parent node, computed once per module."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        cursor = self.parents.get(node)
        while cursor is not None:
            if isinstance(cursor, ast.ClassDef):
                return cursor
            cursor = self.parents.get(cursor)
        return None

    def functions(self) -> Iterator[ast.FunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=rule.rule_id,
            severity=rule.severity,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            message=message,
        )

    # -- suppressions --------------------------------------------------------

    def suppressions_on(self, line: int) -> Optional[Set[str]]:
        """Rule ids suppressed on ``line``; empty set = all rules."""
        if not 1 <= line <= len(self.lines):
            return None
        match = _NOQA_RE.search(self.lines[line - 1])
        if match is None:
            return None
        rules = match.group("rules")
        if rules is None:
            return set()
        return {part.strip().upper() for part in rules.split(",") if part.strip()}

    def is_suppressed(self, finding: Finding) -> bool:
        suppressed = self.suppressions_on(finding.line)
        if suppressed is None:
            return False
        return not suppressed or finding.rule_id in suppressed


class Rule:
    """One protocol-aware invariant, checked module by module.

    Subclasses set ``rule_id``/``severity``/``title`` and implement
    :meth:`check`. Registration happens via :func:`register`.
    """

    rule_id: str = "R000"
    severity: str = "error"
    title: str = "unnamed rule"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule_class.rule_id}")
    if rule_class.severity not in SEVERITIES:
        raise ValueError(
            f"{rule_class.rule_id}: unknown severity {rule_class.severity!r}"
        )
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, in rule-id order."""
    from . import rules as _rules  # noqa: F401  (import registers the rules)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self) -> int:
        """The CLI contract: 0 clean, 1 any active finding."""
        return 1 if self.findings else 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "findings": [f.as_dict() for f in self.findings],
                "suppressed": [f.as_dict() for f in self.suppressed],
                "summary": {
                    "errors": len(self.errors),
                    "warnings": len(self.warnings),
                    "suppressed": len(self.suppressed),
                },
            },
            indent=2,
            sort_keys=True,
        )

    def render_text(self, show_suppressed: bool = False) -> str:
        out: List[str] = []
        for finding in self.findings:
            out.append(finding.render())
        if show_suppressed:
            for finding in self.suppressed:
                out.append(f"{finding.render()} [suppressed]")
        out.append(
            f"{self.files_checked} file(s) checked: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(out)


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def _display_path(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with the given rules.

    ``select`` restricts the run to the named rule ids. Files are
    visited in sorted order, so reports are deterministic — the linter
    holds itself to rule R001.
    """
    active_rules = list(rules) if rules is not None else all_rules()
    if select is not None:
        wanted = {rule_id.upper() for rule_id in select}
        unknown = wanted - {rule.rule_id for rule in active_rules}
        if unknown:
            raise ValueError(f"unknown lint rule(s): {', '.join(sorted(unknown))}")
        active_rules = [r for r in active_rules if r.rule_id in wanted]
    report = LintReport()
    for file_path in _collect_files([Path(p) for p in paths]):
        display = _display_path(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
            module = ModuleContext(file_path, display, source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            report.findings.append(
                Finding(
                    rule_id="R000",
                    severity="error",
                    path=display,
                    line=getattr(exc, "lineno", 1) or 1,
                    message=f"file does not parse: {exc}",
                )
            )
            report.files_checked += 1
            continue
        report.files_checked += 1
        for rule in active_rules:
            for finding in rule.check(module):
                if module.is_suppressed(finding):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return report
