"""The ``repro.lint`` engine: a two-phase, project-wide semantic pass.

The linter enforces the *replayability contract* the bivalency results
rest on (see ``docs/lint.md`` and the "Replayability contract" section
of ``docs/model.md``): schedules and oracle choices must replay
bit-for-bit, protocol programs must confine shared state to
``yield Invoke(...)`` steps, and sequential specs must stay pure.

The run has two phases:

* **Phase 1 — per-file**: every file is parsed once into a
  :class:`ModuleContext`; the per-file rules (R001–R006) walk it and
  the file is distilled into a :class:`repro.lint.index.FileIndex`.
  This phase is embarrassingly parallel (``jobs=N`` fans it over a
  :class:`repro.analysis.parallel.VerificationPool`, merged in
  submission order so findings are byte-identical across job counts)
  and content-addressed (``cache_dir=`` stores each file's index +
  findings under a sha256 fingerprint of its bytes, so a warm re-lint
  re-analyzes only changed files).
* **Phase 2 — whole-program**: the file indexes merge into a
  :class:`repro.lint.callgraph.ProjectIndex` and the
  :class:`ProjectRule` subclasses (R007, R101, R102, R104, R108) run
  interprocedural checks over the call graph — the generalizations
  that catch violations laundered through helper functions, which the
  per-file pass provably cannot see.

Suppressions are inline comments::

    risky_line()  # repro: noqa[R001] justification goes here
    other_line()  # repro: noqa — suppress every rule on this line

A suppressed finding is dropped from the active list but kept in the
report (``--show-suppressed`` prints them), so suppressions stay
auditable — and R007 reports suppressions that silence nothing.
Stdlib-only by design: ``ast`` + ``re`` + ``hashlib``, no new deps.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

#: Severity levels, in increasing order of gravity.
SEVERITIES = ("warning", "error")

#: Path segments that assign a module its protocol "role". Fixture
#: trees mirror these segment names so rules scope identically there.
ROLES = (
    "protocols",
    "analysis",
    "runtime",
    "objects",
    "core",
    "workloads",
    "lint",
    "fuzz",
    "obs",
)

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule_id} "
            f"{self.severity}: {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "file": self.path,
            "line": self.line,
            "message": self.message,
        }


class ModuleContext:
    """Everything a rule needs to know about one parsed source file."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.role: Optional[str] = self._infer_role(path)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._comments: Optional[Dict[int, str]] = None

    @staticmethod
    def _infer_role(path: Path) -> Optional[str]:
        role = None
        for part in path.parts:
            if part in ROLES:
                role = part
        return role

    # -- shared AST services -------------------------------------------------

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """child node → parent node, computed once per module."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        cursor = self.parents.get(node)
        while cursor is not None:
            if isinstance(cursor, ast.ClassDef):
                return cursor
            cursor = self.parents.get(cursor)
        return None

    def functions(self) -> Iterator[ast.FunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=rule.rule_id,
            severity=rule.severity,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            message=message,
        )

    # -- suppressions --------------------------------------------------------

    @property
    def comments(self) -> Dict[int, str]:
        """line number → the ``#`` comment on it, via the tokenizer.

        Only real COMMENT tokens count, so a ``# repro: noqa`` quoted
        inside a docstring neither suppresses anything nor trips R007.
        """
        if self._comments is None:
            comments: Dict[int, str] = {}
            try:
                tokens = tokenize.generate_tokens(
                    io.StringIO(self.source).readline
                )
                for token in tokens:
                    if token.type == tokenize.COMMENT:
                        comments[token.start[0]] = token.string
            except (tokenize.TokenError, IndentationError, SyntaxError):
                pass  # keep whatever tokenized before the error
            self._comments = comments
        return self._comments

    def suppressions_on(self, line: int) -> Optional[Set[str]]:
        """Rule ids suppressed on ``line``; empty set = all rules."""
        comment = self.comments.get(line)
        if comment is None:
            return None
        match = _NOQA_RE.search(comment)
        if match is None:
            return None
        rules = match.group("rules")
        if rules is None:
            return set()
        return {part.strip().upper() for part in rules.split(",") if part.strip()}

    def is_suppressed(self, finding: Finding) -> bool:
        suppressed = self.suppressions_on(finding.line)
        if suppressed is None:
            return False
        return not suppressed or finding.rule_id in suppressed


class Rule:
    """One protocol-aware invariant, checked module by module.

    Subclasses set ``rule_id``/``severity``/``title`` and implement
    :meth:`check`. Registration happens via :func:`register`.
    """

    rule_id: str = "R000"
    severity: str = "error"
    title: str = "unnamed rule"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


class ProjectRule(Rule):
    """An interprocedural invariant, checked once over the whole run.

    Project rules see the merged
    :class:`repro.lint.callgraph.ProjectIndex` instead of one module at
    a time — that is what lets them follow a violation through helper
    calls across modules. :meth:`check` is a no-op so a project rule
    can sit in the same registry as the per-file rules.

    A subclass with ``runs_last = True`` (R007) additionally receives
    the run's suppressed findings via :meth:`check_run` after every
    other rule has finished.
    """

    runs_last: bool = False

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover

    def check_run(
        self, project, suppressed: Sequence[Finding]
    ) -> Iterator[Finding]:
        return self.check_project(project)

    def project_finding(
        self, display: str, line: int, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=display,
            line=line,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule_class.rule_id}")
    if rule_class.severity not in SEVERITIES:
        raise ValueError(
            f"{rule_class.rule_id}: unknown severity {rule_class.severity!r}"
        )
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, in rule-id order."""
    from . import rules as _rules  # noqa: F401  (import registers the rules)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


@dataclass
class LintReport:
    """Everything one lint run produced.

    ``files_reindexed`` / ``cache_hits`` describe *how* the run worked
    (they feed the cache-warm tests and the perf bench) and are
    deliberately excluded from :meth:`to_json`, which must stay
    byte-identical across cold and warm cache runs.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    files_reindexed: int = 0
    cache_hits: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self) -> int:
        """The CLI contract: 0 clean, 1 any active finding."""
        return 1 if self.findings else 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "findings": [f.as_dict() for f in self.findings],
                "suppressed": [f.as_dict() for f in self.suppressed],
                "summary": {
                    "errors": len(self.errors),
                    "warnings": len(self.warnings),
                    "suppressed": len(self.suppressed),
                },
            },
            indent=2,
            sort_keys=True,
        )

    def render_text(self, show_suppressed: bool = False) -> str:
        out: List[str] = []
        for finding in self.findings:
            out.append(finding.render())
        if show_suppressed:
            for finding in self.suppressed:
                out.append(f"{finding.render()} [suppressed]")
        out.append(
            f"{self.files_checked} file(s) checked: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(out)


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def _display_path(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


# -- phase 1: per-file analysis ----------------------------------------------

_lint_salt: Optional[str] = None


def lint_code_salt() -> str:
    """sha256 over every ``.py`` file of the lint package itself.

    Mixed into every per-file cache fingerprint, so editing the engine,
    a rule, or the indexer busts the lint cache — the same "staleness
    is structurally impossible" stance as
    :func:`repro.analysis.cache.code_salt`, scoped to the linter.
    """
    global _lint_salt
    if _lint_salt is None:
        package = Path(__file__).resolve().parent
        blob = hashlib.sha256()
        for path in sorted(package.rglob("*.py")):
            blob.update(str(path.relative_to(package)).encode())
            blob.update(path.read_bytes())
        _lint_salt = blob.hexdigest()
    return _lint_salt


def file_fingerprint(display: str, content: bytes, rule_key: str) -> str:
    """Content address of one file's phase-1 payload."""
    from .index import INDEX_SCHEMA

    blob = hashlib.sha256()
    blob.update(
        repr(("lint-file", INDEX_SCHEMA, lint_code_salt(), display, rule_key))
        .encode()
    )
    blob.update(content)
    return blob.hexdigest()


def _analyze_file(
    path_str: str, display: str, rule_ids: Tuple[str, ...]
) -> Dict[str, object]:
    """Phase-1 worker: parse, run per-file rules, build the index.

    Module-level so :class:`repro.analysis.parallel.VerificationPool`
    workers can import it by qualified name; the returned payload is
    pure data (picklable, cacheable).
    """
    from .index import build_file_index

    path = Path(path_str)
    try:
        source = path.read_text(encoding="utf-8")
        module = ModuleContext(path, display, source)
    except (SyntaxError, UnicodeDecodeError) as exc:
        return {
            "index": None,
            "findings": [
                Finding(
                    rule_id="R000",
                    severity="error",
                    path=display,
                    line=getattr(exc, "lineno", 1) or 1,
                    message=f"file does not parse: {exc}",
                )
            ],
            "suppressed": [],
        }
    wanted = set(rule_ids)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in all_rules():
        if isinstance(rule, ProjectRule) or rule.rule_id not in wanted:
            continue
        for finding in rule.check(module):
            if module.is_suppressed(finding):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return {
        "index": build_file_index(module),
        "findings": findings,
        "suppressed": suppressed,
    }


# -- the driver --------------------------------------------------------------


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``.

    ``select`` restricts the run to the named rule ids (per-file and
    project rules alike). ``jobs`` fans phase 1 over worker processes;
    results merge in submission order, so findings are byte-identical
    for any job count. ``cache_dir`` enables the content-addressed
    phase-1 cache (ignored when explicit ``rules`` instances are
    passed — their behaviour is not captured by the fingerprint).
    Files are visited in sorted order and findings sorted at the end,
    so reports are deterministic — the linter holds itself to R001.
    """
    active_rules = list(rules) if rules is not None else all_rules()
    if select is not None:
        wanted = {rule_id.upper() for rule_id in select}
        unknown = wanted - {rule.rule_id for rule in active_rules}
        if unknown:
            raise ValueError(f"unknown lint rule(s): {', '.join(sorted(unknown))}")
        active_rules = [r for r in active_rules if r.rule_id in wanted]
    file_rules = [r for r in active_rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active_rules if isinstance(r, ProjectRule)]
    rule_ids = tuple(sorted(rule.rule_id for rule in file_rules))
    rule_key = ",".join(rule_ids)

    cache = None
    if cache_dir is not None and rules is None:
        from ..analysis.cache import ExplorationCache

        cache = ExplorationCache(cache_dir)

    files = _collect_files([Path(p) for p in paths])
    report = LintReport(files_checked=len(files))
    payloads: List[Optional[Dict[str, object]]] = [None] * len(files)
    pending: List[Tuple[int, Optional[str], str, Path]] = []

    for pos, file_path in enumerate(files):
        display = _display_path(file_path)
        try:
            content = file_path.read_bytes()
        except OSError as exc:
            payloads[pos] = {
                "index": None,
                "findings": [
                    Finding("R000", "error", display, 1, f"unreadable: {exc}")
                ],
                "suppressed": [],
            }
            continue
        fp = None
        if cache is not None:
            fp = file_fingerprint(display, content, rule_key)
            payload = cache.get(fp)
            if payload is not None:
                payloads[pos] = payload
                report.cache_hits += 1
                continue
        pending.append((pos, fp, display, file_path))

    if pending:
        from ..analysis.parallel import VerificationPool, WorkItem

        report.files_reindexed = len(pending)
        pool = VerificationPool(jobs=jobs)
        results = pool.run(
            [
                WorkItem(
                    key=pos,
                    fn=_analyze_file,
                    args=(str(file_path), display, rule_ids),
                )
                for pos, _fp, display, file_path in pending
            ]
        )
        for (pos, fp, display, _file_path), result in zip(pending, results):
            if not result.ok:
                payloads[pos] = {
                    "index": None,
                    "findings": [
                        Finding(
                            "R000",
                            "error",
                            display,
                            1,
                            f"lint analysis failed: {result.failure.render()}",
                        )
                    ],
                    "suppressed": [],
                }
                continue
            payloads[pos] = result.value
            if cache is not None and fp is not None:
                cache.put(fp, result.value)

    for payload in payloads:
        if payload is None:  # pragma: no cover - defensive
            continue
        report.findings.extend(payload["findings"])
        report.suppressed.extend(payload["suppressed"])

    # -- phase 2: whole-program rules over the merged index ---------------
    if project_rules:
        from .callgraph import ProjectIndex

        indexes = [
            payload["index"]
            for payload in payloads
            if payload is not None and payload["index"] is not None
        ]
        project = ProjectIndex(indexes)
        by_display = {index.display: index for index in indexes}
        ordered = sorted(
            project_rules, key=lambda rule: (rule.runs_last, rule.rule_id)
        )
        for rule in ordered:
            if rule.runs_last:
                produced = rule.check_run(project, list(report.suppressed))
            else:
                produced = rule.check_project(project)
            for finding in produced:
                index = by_display.get(finding.path)
                if index is not None and _suppresses_project(
                    index, finding, explicit_only=rule.runs_last
                ):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)

    report.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return report


def _suppresses_project(index, finding: Finding, explicit_only: bool) -> bool:
    """Suppression check for phase-2 findings, via the file index.

    R007 (``explicit_only``) is only silenced by a noqa naming it —
    otherwise a *bare* unused ``# repro: noqa`` would suppress its own
    unused-ness and never be reported.
    """
    from .index import NOQA_ALL

    rules = index.noqa.get(finding.line)
    if rules is None:
        return False
    if explicit_only:
        return finding.rule_id in rules
    return NOQA_ALL in rules or finding.rule_id in rules
