"""R002 — shared-access discipline in protocol program coroutines.

Scope: program coroutines (generators yielding ``Invoke`` actions or
delegating with ``yield from``) in ``protocols/`` modules. The model —
and every bivalency argument built on it — assumes a process touches
shared state **only** through ``yield Invoke(...)`` steps, each of which
costs one scheduler step and is visible to the explorer. A program that
mutates closed-over or global state, or that reaches a live
``SharedObject``/oracle directly, performs hidden shared-memory traffic
the configuration calculus never sees.

Flags, inside a program coroutine:

* ``global`` / ``nonlocal`` declarations;
* mutation of state that is not bound inside the coroutine itself —
  mutating method calls (``.append``, ``.update``, …) or subscript /
  attribute stores whose root is a closed-over name, or ``self`` (the
  implementation instance is shared by every client process);
* direct references to ``SharedObject`` or ``*Oracle`` classes — base
  objects answer through ``yield Invoke(...)``, never by direct call.

The per-operation ``memory`` scratchpad is a parameter, hence locally
bound, hence sanctioned — that is the model's escape hatch for
per-process persistent state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import is_program_coroutine, local_bindings, root_name
from ..engine import Finding, ModuleContext, Rule, register

_MUTATORS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "sort",
    "reverse",
}


@register
class SharedAccessRule(Rule):
    rule_id = "R002"
    severity = "error"
    title = "programs reach shared state only via yield Invoke(...)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.role != "protocols":
            return
        for fn in module.functions():
            if not is_program_coroutine(fn):
                continue
            yield from self._check_program(module, fn)

    def _check_program(
        self, module: ModuleContext, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        bound = local_bindings(fn)

        def is_foreign(root: str) -> bool:
            # ``self`` is a parameter, but the enclosing instance is
            # shared across client processes — mutating it is exactly
            # the hidden channel this rule exists to catch.
            return root == "self" or root not in bound

        for node in ast.walk(fn):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                names = ", ".join(node.names)
                yield module.finding(
                    self,
                    node,
                    f"program coroutine {fn.name!r} declares "
                    f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}"
                    f" {names}: shared state must flow through yield "
                    f"Invoke(...)",
                )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                ):
                    root = root_name(func.value)
                    if root is not None and is_foreign(root):
                        yield module.finding(
                            self,
                            node,
                            f"program coroutine {fn.name!r} mutates "
                            f"{'shared instance state on ' if root == 'self' else 'closed-over/global '}"
                            f"{root!r} via .{func.attr}(...); only "
                            f"locally-bound state (e.g. the memory "
                            f"scratchpad) may be mutated outside yield "
                            f"Invoke(...)",
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = root_name(target.value)
                        if root is not None and is_foreign(root):
                            yield module.finding(
                                self,
                                node,
                                f"program coroutine {fn.name!r} stores into "
                                f"{root!r}, which is not bound inside the "
                                f"coroutine; shared state must flow through "
                                f"yield Invoke(...)",
                            )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id == "SharedObject" or node.id.endswith("Oracle"):
                    yield module.finding(
                        self,
                        node,
                        f"program coroutine {fn.name!r} references "
                        f"{node.id}: base objects and oracles must only be "
                        f"reached through yield Invoke(...)",
                    )
