"""R101 — determinism taint: the interprocedural generalization of R001.

R001 flags a clock read or global-RNG draw *where it happens*. That is
blind to laundering: a helper in ``workloads/`` (outside R001's scope)
that returns ``time.time()`` passes a nondeterministic value into the
scheduler with no flagged line anywhere. R101 closes the gap with the
:func:`repro.lint.taint.tainted_returns` fixpoint — a function whose
return value derives from unseeded ``random.*``, a clock read, or
``id()`` (directly, through local assignments, or through further
calls) taints every call site, and call sites in replay-critical roles
are findings.

The finding lands on the *call site* in the deterministic role, with a
witness chain back to the seed line, so the fix is local: seed an RNG,
or pass the value in explicitly from outside the replay path.

Suppression composes with R001: ``# repro: noqa[R001]`` on the seed
line sanctions the source, so nothing downstream is tainted;
``# repro: noqa[R101]`` on the call site accepts one consumption.
"""

from __future__ import annotations

from typing import Iterator

from ..engine import Finding, ProjectRule, register
from ..taint import _label, tainted_returns


@register
class DeterminismTaintRule(ProjectRule):
    rule_id = "R101"
    severity = "error"
    title = "determinism taint (nondeterministic values reaching replay-critical roles)"

    #: Same roles as R001 — the code whose behaviour is replay evidence.
    SCOPE = {"protocols", "analysis", "runtime", "fuzz", "obs"}

    def check_project(self, project) -> Iterator[Finding]:
        tainted = tainted_returns(project)
        for key in project.sorted_function_keys():
            file, fn = project.functions[key]
            if file.role not in self.SCOPE:
                continue
            for site in fn.calls:
                callee = project.resolve_call(file, fn, site.ref)
                if callee is None or callee == key:
                    continue
                verdict = tainted.get(callee)
                if verdict is None:
                    continue
                yield self.project_finding(
                    file.display,
                    site.lineno,
                    f"{fn.qualname} consumes the return value of "
                    f"{_label(callee)}, which derives from "
                    f"{verdict.render_chain()}; replay-critical code must "
                    f"not consume nondeterministic values (seed an RNG or "
                    f"pass the value in explicitly)",
                )
