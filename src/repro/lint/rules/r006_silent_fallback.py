"""R006 — silent fallback: scripted replays must be able to fail loudly.

Scope: classes whose name starts with ``Scripted`` and that define a
``choose`` method — the replay half of the adversary. A scripted replay
that degrades silently past the end of its script (or on an
out-of-range entry) turns a counterexample into a *different run* while
still reporting success; this is precisely how replayed evidence rots.
The contract:

* the constructor must accept a ``strict`` flag, and
* the class must contain at least one ``raise`` (the strict path), so a
  diverging replay can abort instead of improvising.

The historical ``ScriptedOracle`` fell back to outcome 0 forever — this
rule's first real catch, fixed alongside its introduction (the oracle
now records ``fallbacks``/``diverged`` and raises
``ReplayDivergenceError`` in strict mode).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import Finding, ModuleContext, Rule, register


@register
class SilentFallbackRule(Rule):
    rule_id = "R006"
    severity = "error"
    title = "Scripted* replay classes support strict (loud) replay"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for cls in module.classes():
            if not cls.name.startswith("Scripted"):
                continue
            methods = {
                statement.name: statement
                for statement in cls.body
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "choose" not in methods:
                continue
            init = methods.get("__init__")
            if init is not None and not self._has_strict_param(init):
                yield module.finding(
                    self,
                    init,
                    f"{cls.name}.__init__ has no 'strict' parameter: a "
                    f"replay consumer cannot opt into loud divergence "
                    f"detection",
                )
            if not self._has_raise(cls):
                yield module.finding(
                    self,
                    cls,
                    f"{cls.name} never raises: exhausted or out-of-range "
                    f"scripts degrade silently, so a replayed counterexample "
                    f"can diverge without anyone noticing",
                )

    @staticmethod
    def _has_strict_param(init: ast.FunctionDef) -> bool:
        names = {arg.arg for arg in init.args.args}
        names.update(arg.arg for arg in init.args.kwonlyargs)
        return "strict" in names

    @staticmethod
    def _has_raise(cls: ast.ClassDef) -> bool:
        return any(isinstance(node, ast.Raise) for node in ast.walk(cls))
