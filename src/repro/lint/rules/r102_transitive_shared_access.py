"""R102 — transitive shared access: R002 through any helper chain.

R002's per-file contract: a program coroutine touches shared state
only via ``yield Invoke(...)``. Its blind spot is one function call —
``program`` calling ``bump_counter()`` where the *helper* does the
``global`` write keeps every individually-checked line clean. R102
follows the call graph: any program coroutine whose call chain reaches
a module-global / closed-over write
(:func:`repro.lint.taint.shared_writers`), or a ``self.*`` call chain
that mutates the shared implementation instance
(:func:`repro.lint.taint.self_writers`), is flagged at the call site
with the witness chain down to the write.

Why it matters here: under the atomic-step semantics of the model, a
hidden in-memory side channel between coroutines gives them agreement
power the object model does not grant — exactly the kind of accident
that fakes a consensus number (see ``docs/model.md``).
"""

from __future__ import annotations

from typing import Iterator

from ..engine import Finding, ProjectRule, register
from ..taint import _label, self_writers, shared_writers


@register
class TransitiveSharedAccessRule(ProjectRule):
    rule_id = "R102"
    severity = "error"
    title = "transitive shared access (program coroutines reaching writes through helpers)"

    def check_project(self, project) -> Iterator[Finding]:
        shared = shared_writers(project)
        on_self = self_writers(project)
        for key in project.sorted_function_keys():
            file, fn = project.functions[key]
            if file.role != "protocols" or not fn.is_program:
                continue
            for site in fn.calls:
                callee = project.resolve_call(file, fn, site.ref)
                if callee is None or callee == key:
                    continue
                verdict = shared.get(callee)
                if verdict is not None:
                    yield self.project_finding(
                        file.display,
                        site.lineno,
                        f"program coroutine {fn.qualname} reaches a "
                        f"shared-state write through {_label(callee)}: "
                        f"{verdict.render_chain()}; programs may only touch "
                        f"shared state via yield Invoke(...)",
                    )
                    continue
                if site.ref[0] == "self":
                    verdict = on_self.get(callee)
                    if verdict is not None:
                        yield self.project_finding(
                            file.display,
                            site.lineno,
                            f"program coroutine {fn.qualname} mutates its "
                            f"shared instance through {_label(callee)}: "
                            f"{verdict.render_chain()}; route the write "
                            f"through yield Invoke(...)",
                        )
