"""R004 — spec purity: sequential specs are pure transition relations.

Scope: classes that directly subclass ``SequentialSpec``, anywhere.
Three consumers replay the same ``responses(state, operation)``
relation — the runtime, the explorer, and the linearizability checker —
and they agree only if the relation is a pure function of its inputs.
Nondeterminism is expressed by returning *multiple* outcomes, never by
flipping coins inside the transition:

* mutating the input ``state`` corrupts sibling configurations that
  share the (supposedly immutable, hashable) value;
* I/O (``print``/``open``/``input``) inside a transition makes spec
  evaluation observable and order-dependent;
* randomness inside a transition hides an adversary choice from the
  explorer — that choice must instead appear as an extra ``Outcome``.

Checked methods: ``initial_state`` and ``responses``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import root_name
from ..engine import Finding, ModuleContext, Rule, register

_IO_CALLS = {"print", "open", "input"}
_MUTATORS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "sort",
    "reverse",
}


def _base_names(cls: ast.ClassDef):
    for base in cls.bases:
        if isinstance(base, ast.Name):
            yield base.id
        elif isinstance(base, ast.Attribute):
            yield base.attr


@register
class SpecPurityRule(Rule):
    rule_id = "R004"
    severity = "error"
    title = "SequentialSpec transitions are pure (no mutation, I/O, RNG)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for cls in module.classes():
            if "SequentialSpec" not in set(_base_names(cls)):
                continue
            for statement in cls.body:
                if not isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if statement.name not in {"responses", "initial_state"}:
                    continue
                yield from self._check_method(module, cls, statement)

    def _state_param(self, method: ast.FunctionDef) -> Optional[str]:
        # responses(self, state, operation): the state is arg #2.
        if method.name != "responses":
            return None
        args = method.args.args
        if len(args) >= 2:
            return args[1].arg
        return None

    def _check_method(
        self, module: ModuleContext, cls: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        state_name = self._state_param(method)
        where = f"{cls.name}.{method.name}"
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in _IO_CALLS:
                    yield module.finding(
                        self,
                        node,
                        f"{where} performs I/O ({func.id}); spec transitions "
                        f"must be pure",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and state_name is not None
                    and root_name(func.value) == state_name
                ):
                    yield module.finding(
                        self,
                        node,
                        f"{where} mutates the input state via "
                        f".{func.attr}(...); states are shared immutable "
                        f"values — build a new state instead",
                    )
            elif isinstance(node, ast.Name) and node.id == "random":
                yield module.finding(
                    self,
                    node,
                    f"{where} draws randomness; nondeterminism must be "
                    f"expressed as multiple Outcome entries, not coin flips",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, (ast.Attribute, ast.Subscript))
                        and state_name is not None
                        and root_name(target.value) == state_name
                    ):
                        yield module.finding(
                            self,
                            node,
                            f"{where} stores into the input state; states "
                            f"are shared immutable values — build a new "
                            f"state instead",
                        )
