"""R003 — wait-freedom hazard: yield-free unbounded loops in programs.

Scope: program coroutines in ``protocols/`` modules. A ``while True``
(or any constant-true loop) whose body never yields is a local spin:
the process burns scheduler steps — or worse, hangs the simulator —
without ever taking a shared-memory step, so neither the explorer nor
the wait-freedom auditors can see or bound it. Loops that yield inside
are adversary-visible and fine (their bounds are the protocol's
business, e.g. the snapshot's pigeonhole argument).

A protocol that is *deliberately* only obstruction-free can mark the
enclosing class with ``obstruction_free = True`` (or suppress a single
loop with ``# repro: noqa[R003]`` plus a justification).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import is_program_coroutine, walk_function_body
from ..engine import Finding, ModuleContext, Rule, register


def _is_constant_true(test: ast.AST) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _class_marked_obstruction_free(cls: Optional[ast.ClassDef]) -> bool:
    if cls is None:
        return False
    for statement in cls.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "obstruction_free"
                    and isinstance(statement.value, ast.Constant)
                    and statement.value.value is True
                ):
                    return True
        if (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and statement.target.id == "obstruction_free"
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is True
        ):
            return True
    return False


@register
class WaitFreedomRule(Rule):
    rule_id = "R003"
    severity = "warning"
    title = "no yield-free unbounded loops in protocol programs"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.role != "protocols":
            return
        for fn in module.functions():
            if not is_program_coroutine(fn):
                continue
            enclosing = module.enclosing_class(fn)
            if _class_marked_obstruction_free(enclosing):
                continue
            for node in walk_function_body(fn):
                if not isinstance(node, ast.While):
                    continue
                if not _is_constant_true(node.test):
                    continue
                has_yield = any(
                    isinstance(inner, (ast.Yield, ast.YieldFrom))
                    for body_node in node.body
                    for inner in ast.walk(body_node)
                )
                if not has_yield:
                    yield module.finding(
                        self,
                        node,
                        f"program coroutine {fn.name!r} spins in a "
                        f"constant-true loop with no yield: the loop takes "
                        f"no shared-memory steps, so wait-freedom auditors "
                        f"cannot bound it (mark the class obstruction_free "
                        f"= True if this liveness class is intended)",
                    )
