"""R001 — determinism: schedule replay must survive a process restart.

Scope: modules under ``protocols/``, ``analysis/``, ``runtime/`` — the
code that produces and replays schedules. Anything whose behaviour can
differ between two interpreter invocations invalidates a recorded
counterexample:

* calls on the **module-level RNG** (``random.choice(...)`` etc.) — the
  global RNG is shared, unseeded, and consumed by whoever runs first;
  ``random.Random(seed)`` instances are fine;
* **clock reads** (``time.time()``, ``datetime.now()``, …) — wall-clock
  values leak into schedules and never replay;
* ``id(...)`` — CPython addresses differ between runs, so ``id``-keyed
  maps or sort keys reorder nondeterministically;
* **iterating a set** (literal, ``set(...)``/``frozenset(...)`` call,
  or a name/attribute annotated as a set in the same module) — set
  order depends on ``PYTHONHASHSEED``; iterate ``sorted(...)`` or an
  insertion-ordered structure instead (the explorer's BFS ``order``
  list exists for exactly this).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_call, iteration_sites, set_typed_names
from ..engine import Finding, ModuleContext, Rule, register

_CLOCK_CALLS = {
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}


@register
class DeterminismRule(Rule):
    rule_id = "R001"
    severity = "error"
    title = "replay determinism (no global RNG, clocks, id(), set order)"

    # ``fuzz`` is in scope: fuzzed runs are replay evidence exactly like
    # explorer witnesses, so the subsystem obeys the same determinism
    # contract (seeded RNG instances only, no clocks, no set iteration).
    # ``obs`` is in scope too: its metrics snapshots are compared
    # byte-for-byte across --jobs, so only the explicitly-suppressed
    # trace timestamps may touch a clock.
    SCOPE = {"protocols", "analysis", "runtime", "fuzz", "obs"}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.role not in self.SCOPE:
            return
        set_names, set_attrs = set_typed_names(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
        for site in iteration_sites(module.tree):
            reason = self._set_iteration_reason(site, set_names, set_attrs)
            if reason is not None:
                yield module.finding(
                    self,
                    site,
                    f"iteration over {reason}: set order depends on "
                    f"PYTHONHASHSEED and breaks schedule replay; iterate "
                    f"sorted(...) or an insertion-ordered structure",
                )

    def _check_call(
        self, module: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        dotted = dotted_call(node)
        if dotted is not None:
            owner, attr = dotted
            if owner == "random" and attr != "Random":
                yield module.finding(
                    self,
                    node,
                    f"random.{attr}() draws from the shared module-level "
                    f"RNG; use a seeded random.Random instance",
                )
            elif owner == "random" and attr == "Random" and not node.args:
                yield module.finding(
                    self,
                    node,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )
            elif attr in _CLOCK_CALLS.get(owner, ()):
                yield module.finding(
                    self,
                    node,
                    f"{owner}.{attr}() reads the clock; wall-clock values "
                    f"never replay bit-for-bit",
                )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and node.args
        ):
            yield module.finding(
                self,
                node,
                "id(...) values differ between interpreter runs; key on "
                "stable identities (pids, names) instead",
            )

    @staticmethod
    def _set_iteration_reason(site, set_names, set_attrs):
        if isinstance(site, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(site, ast.Call) and isinstance(site.func, ast.Name):
            if site.func.id in {"set", "frozenset"}:
                return f"a {site.func.id}(...) call"
        if isinstance(site, ast.Name) and site.id in set_names:
            return f"set-typed name {site.id!r}"
        if isinstance(site, ast.Attribute) and site.attr in set_attrs:
            return f"set-typed attribute .{site.attr}"
        return None
