"""Rule modules — importing this package registers every rule.

One module per invariant of the replayability contract. Per-file rules
(phase 1, run module by module):

* ``r001_determinism`` — no unseeded randomness, clocks, ``id()`` keys,
  or raw-set iteration in replay-critical code;
* ``r002_shared_access`` — protocol programs reach shared state only
  via ``yield Invoke(...)``;
* ``r003_wait_freedom`` — no yield-free unbounded loops in programs;
* ``r004_spec_purity`` — sequential specs are pure transition relations;
* ``r005_adversary_state`` — seeded adversaries expose reproducible
  state;
* ``r006_silent_fallback`` — scripted replays must support strict mode.

Project rules (phase 2, run once over the merged call graph):

* ``r007_unused_suppression`` — ``# repro: noqa`` lines that silence
  nothing are reported;
* ``r101_determinism_taint`` — nondeterministic values tracked through
  returns and cross-module calls into replay-critical roles;
* ``r102_transitive_shared_access`` — program coroutines reaching
  shared writes through helper chains;
* ``r104_transitive_spec_purity`` — spec transitions calling impure
  helpers;
* ``r108_yield_discipline`` — discarded program-coroutine calls and
  dead-yield loops.
"""

from . import (  # noqa: F401
    r001_determinism,
    r002_shared_access,
    r003_wait_freedom,
    r004_spec_purity,
    r005_adversary_state,
    r006_silent_fallback,
    r007_unused_suppression,
    r101_determinism_taint,
    r102_transitive_shared_access,
    r104_transitive_spec_purity,
    r108_yield_discipline,
)
