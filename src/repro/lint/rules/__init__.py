"""Rule modules — importing this package registers every rule.

One module per invariant of the replayability contract:

* ``r001_determinism`` — no unseeded randomness, clocks, ``id()`` keys,
  or raw-set iteration in replay-critical code;
* ``r002_shared_access`` — protocol programs reach shared state only
  via ``yield Invoke(...)``;
* ``r003_wait_freedom`` — no yield-free unbounded loops in programs;
* ``r004_spec_purity`` — sequential specs are pure transition relations;
* ``r005_adversary_state`` — seeded adversaries expose reproducible
  state;
* ``r006_silent_fallback`` — scripted replays must support strict mode.
"""

from . import (  # noqa: F401
    r001_determinism,
    r002_shared_access,
    r003_wait_freedom,
    r004_spec_purity,
    r005_adversary_state,
    r006_silent_fallback,
)
