"""R007 — unused suppressions: every ``noqa`` must still earn its keep.

The suppression audit in ``tests/lint/test_self_clean.py`` pins the
exact set of sanctioned escape hatches in the package. That audit only
stays honest if suppressions that stopped suppressing anything — the
offending code moved, or a rule got smarter — are surfaced rather than
silently accumulating. R007 runs *after* every other rule
(``runs_last``) and reports each ``# repro: noqa`` line that silenced
no finding in this run.

An R007 finding is itself only suppressible by a noqa that names R007
explicitly; otherwise a bare unused ``# repro: noqa`` would suppress
its own unused-ness and never be reported.

Severity is ``warning``: a stale suppression is debt, not breakage —
but note that ``--select`` runs disable rules, which legitimately
leaves their suppressions unused, so R007 is most meaningful on a
full-rule run.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..engine import Finding, ProjectRule, register
from ..index import NOQA_ALL


@register
class UnusedSuppressionRule(ProjectRule):
    rule_id = "R007"
    severity = "warning"
    title = "unused '# repro: noqa' suppressions"

    runs_last = True

    def check_run(
        self, project, suppressed: Sequence[Finding]
    ) -> Iterator[Finding]:
        used = {(f.path, f.line) for f in suppressed}
        for file in project.iter_files():
            for line in sorted(file.noqa):
                if (file.display, line) in used:
                    continue
                rules = file.noqa[line]
                label = (
                    ""
                    if rules == (NOQA_ALL,)
                    else f"[{','.join(r for r in rules if r != NOQA_ALL)}]"
                )
                yield self.project_finding(
                    file.display,
                    line,
                    f"unused suppression '# repro: noqa{label}': no "
                    f"finding on this line was silenced by it; delete the "
                    f"comment or fix the rule selection",
                )
