"""R005 — adversary statefulness: seeded adversaries, reproducible runs.

Scope: classes that directly subclass ``Scheduler`` or
``ResponseOracle``, anywhere — the two halves of the paper's adversary.
Every run used as evidence must be reconstructible from (seed, script)
alone, so an adversary may only draw randomness from an RNG it
constructed from an explicit seed:

* calls on the **module-level RNG** (``random.choice`` etc.) share
  hidden global state with every other caller in the process;
* ``random.Random()`` with no seed differs on every construction;
* RNG instances at **module scope** are shared across adversary
  instances, so two "independent" adversaries consume each other's
  streams;
* clock reads make the adversary's choices time-dependent.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..astutil import dotted_call
from ..engine import Finding, ModuleContext, Rule, register

_CLOCK_OWNERS = {"time", "datetime", "date"}


def _base_names(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


@register
class AdversaryStateRule(Rule):
    rule_id = "R005"
    severity = "warning"
    title = "schedulers/oracles draw only from constructor-seeded RNGs"

    BASES = {"Scheduler", "ResponseOracle"}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        adversary_classes = [
            cls
            for cls in module.classes()
            if _base_names(cls) & self.BASES
        ]
        if not adversary_classes:
            return
        for cls in adversary_classes:
            yield from self._check_class(module, cls)
        # Module-level RNGs in a module that defines adversaries are
        # shared across instances — a hidden channel between runs.
        for statement in module.tree.body:
            if isinstance(statement, ast.Assign) and self._is_rng_call(
                statement.value
            ):
                yield module.finding(
                    self,
                    statement,
                    "module-level random.Random(...) instance is shared by "
                    "every adversary in the process; construct the RNG from "
                    "a seed in __init__ instead",
                )

    @staticmethod
    def _is_rng_call(value: ast.AST) -> bool:
        return (
            isinstance(value, ast.Call)
            and dotted_call(value) == ("random", "Random")
        )

    def _check_class(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for node in ast.walk(cls):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_call(node)
            if dotted is None:
                continue
            owner, attr = dotted
            if owner == "random" and attr != "Random":
                yield module.finding(
                    self,
                    node,
                    f"{cls.name} draws from the module-level RNG "
                    f"(random.{attr}); adversaries must use a "
                    f"constructor-seeded random.Random instance",
                )
            elif owner == "random" and attr == "Random" and not node.args:
                yield module.finding(
                    self,
                    node,
                    f"{cls.name} constructs random.Random() without a seed; "
                    f"runs driven by this adversary cannot be reproduced",
                )
            elif owner in _CLOCK_OWNERS:
                yield module.finding(
                    self,
                    node,
                    f"{cls.name} reads the clock ({owner}.{attr}); adversary "
                    f"choices must depend only on (seed, observed run)",
                )
