"""R104 — transitive spec purity: R004 through helper calls.

R004 keeps ``SequentialSpec.responses`` / ``initial_state`` pure, but
only sees the method body: move the ``print`` or the ``global`` write
into a module helper — possibly in another file — and every line R004
inspects is clean. R104 asks the
:func:`repro.lint.taint.impure_functions` fixpoint instead: a call
from a checked spec method to any function that transitively performs
I/O, writes shared state, or consumes nondeterminism is flagged at the
call site, with the witness chain down to the offending line.

The runtime, the explorer, and the linearizability checker all replay
the same transition relation; an impure helper makes their verdicts
diverge in ways no per-file diff will ever explain.
"""

from __future__ import annotations

from typing import Iterator

from ..engine import Finding, ProjectRule, register
from ..taint import _label, impure_functions

_CHECKED_METHODS = {"responses", "initial_state"}


@register
class TransitiveSpecPurityRule(ProjectRule):
    rule_id = "R104"
    severity = "error"
    title = "transitive spec purity (SequentialSpec transitions calling impure helpers)"

    def check_project(self, project) -> Iterator[Finding]:
        impure = impure_functions(project)
        for key in project.sorted_function_keys():
            file, fn = project.functions[key]
            if fn.class_name is None or fn.name not in _CHECKED_METHODS:
                continue
            spec_classes = {
                cls.name
                for cls in file.classes
                if "SequentialSpec" in cls.bases
            }
            if fn.class_name not in spec_classes:
                continue
            for site in fn.calls:
                callee = project.resolve_call(file, fn, site.ref)
                if callee is None or callee == key:
                    continue
                verdict = impure.get(callee)
                if verdict is None:
                    continue
                yield self.project_finding(
                    file.display,
                    site.lineno,
                    f"{fn.qualname} calls impure helper {_label(callee)}: "
                    f"{verdict.render_chain()}; spec transitions must stay "
                    f"pure all the way down (express nondeterminism as "
                    f"extra Outcome entries)",
                )
