"""R108 — yield-discipline reachability: coroutine plumbing mistakes.

Two failure modes the per-file rules cannot see:

* **Discarded coroutine call**: ``helper(pid)`` on a statement line,
  where ``helper`` is a program coroutine (it ``yield Invoke(...)``s).
  Calling a generator function runs *no* body code — the call builds a
  generator and throws it away, so the invocation the author expected
  silently never happens. The helper may live in another module; only
  the call graph knows it is a coroutine. The fix is ``yield from
  helper(pid)`` inside a program, or driving it through the runtime.
* **Dead-yield loop**: a ``while True:`` in a program coroutine whose
  yields all sit in statically unreachable branches
  (``if False: yield ...``). R003 flags loops with *no* yield
  anywhere; this variant looks disciplined per-file but spins without
  ever offering the adversary a step, which breaks the wait-freedom
  accounting exactly the same way.
"""

from __future__ import annotations

from typing import Iterator

from ..engine import Finding, ProjectRule, register
from ..taint import _label


@register
class YieldDisciplineRule(ProjectRule):
    rule_id = "R108"
    severity = "error"
    title = "yield discipline (discarded coroutine calls, dead-yield loops)"

    def check_project(self, project) -> Iterator[Finding]:
        for key in project.sorted_function_keys():
            file, fn = project.functions[key]
            for site in fn.calls:
                if not site.discarded:
                    continue
                callee = project.resolve_call(file, fn, site.ref)
                if callee is None or callee == key:
                    continue
                _cfile, cfn = project.functions[callee]
                if not cfn.is_program:
                    continue
                yield self.project_finding(
                    file.display,
                    site.lineno,
                    f"{fn.qualname} calls program coroutine "
                    f"{_label(callee)} and discards the generator: no "
                    f"Invoke step ever runs; delegate with 'yield from "
                    f"{site.ref[-1]}(...)' or drive it through the runtime",
                )
            if file.role == "protocols" and fn.is_program:
                for seed in fn.dead_yield_loops:
                    yield self.project_finding(
                        file.display,
                        seed.lineno,
                        f"{fn.qualname} contains a {seed.desc}; the loop "
                        f"can spin forever without offering the adversary "
                        f"a step, breaking wait-freedom accounting",
                    )
