"""CLI glue for ``python -m repro lint`` / the ``repro-lint`` script.

Exit-code contract (so the linter can gate CI):

* ``0`` — every checked file is clean (suppressed findings included in
  the report but not the verdict);
* ``1`` — at least one active finding (any severity) or unparseable
  file;
* ``2`` — usage error (unknown rule id, missing path).

``--jobs N`` fans the per-file phase over worker processes and
``--cache-dir`` reuses phase-1 results across runs; both are
report-invariant — findings are byte-identical whatever you pick.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import all_rules, lint_paths


def default_target() -> Path:
    """The installed ``repro`` package tree — lints itself by default."""
    return Path(__file__).resolve().parent.parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run, e.g. R001,R101",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the per-file phase (default: 1; "
        "findings are byte-identical for any value)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed cache for per-file analysis; a warm "
        "re-lint re-indexes only changed files",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by '# repro: noqa[...]'",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.severity:7s}  {rule.title}")
        return 0
    paths: List[Path] = [Path(p) for p in args.paths] or [default_target()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"repro lint: no such path: {path}")
        return 2
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    try:
        report = lint_paths(
            paths,
            select=select,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
    except ValueError as exc:
        print(f"repro lint: {exc}")
        return 2
    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        from .sarif import render_sarif

        print(render_sarif(report))
    else:
        print(report.render_text(show_suppressed=args.show_suppressed))
    return report.exit_code()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Protocol-aware static analysis for the repro library "
        "(replayability contract R001-R006 + interprocedural R007/R10x)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
