"""SARIF 2.1.0 rendering of a lint report, for GitHub code scanning.

``python -m repro lint --format sarif > lint.sarif`` produces a
single-run SARIF log that ``github/codeql-action/upload-sarif`` (see
``.github/workflows/ci.yml``) turns into code-scanning annotations on
the offending lines. Only *active* findings are emitted — suppressed
findings stay a local-audit concern.

The serialization is deterministic (sorted keys, findings already
sorted by the engine), so the SARIF byte-identity contract matches the
text/json formats across ``--jobs`` and cache states.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .engine import LintReport, all_rules

#: SARIF severity levels for our two rule severities.
_LEVELS = {"error": "error", "warning": "warning"}

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(report: LintReport) -> str:
    """The report as a SARIF 2.1.0 JSON document (one run)."""
    rules: List[Dict[str, object]] = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.title},
            "defaultConfiguration": {"level": _LEVELS[rule.severity]},
        }
        for rule in all_rules()
    ]
    rule_order = {entry["id"]: pos for pos, entry in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for finding in report.findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {"startLine": finding.line},
                    }
                }
            ],
        }
        if finding.rule_id in rule_order:
            result["ruleIndex"] = rule_order[finding.rule_id]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
