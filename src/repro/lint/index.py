"""Phase 1 of the two-phase lint engine: per-file semantic indexing.

The interprocedural rules (R101/R102/R104/R108) need to see *through*
helper calls, which a per-file AST walk cannot. Instead of shipping
ASTs around, each file is distilled once into a :class:`FileIndex` — a
plain-data summary of everything the project phase needs:

* every function with its call sites (who it calls, whether the result
  is discarded or delegated via ``yield from``);
* **seeds**: the line-level facts the taint/impurity fixpoints grow
  from — nondeterminism sources (unseeded ``random.*``, clocks,
  ``id()``), I/O calls, shared-state writes, ``self`` mutations;
* a local dataflow summary saying whether the function's *return
  value* is derived from a seed or from the return value of a callee
  (tracked through assignments, loops and augmented assignments);
* classes (bases + methods), the import map for cross-module call
  resolution, and the file's ``# repro: noqa`` lines.

Because a :class:`FileIndex` is pure data it pickles cleanly, which is
what lets the engine fan indexing over
:class:`repro.analysis.parallel.VerificationPool` workers and store
entries in the content-addressed cache — one sha256 fingerprint per
file (content + engine salt), so a warm re-lint re-indexes only the
files that actually changed.

Seeds honour suppressions at the *source* line: a clock read carrying
``# repro: noqa[R001]`` is a sanctioned nondeterminism source, so it
must not taint its callers either — the suppression families below map
each seed kind to the per-file and project rules that share its escape
hatch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .astutil import (
    dotted_call,
    is_program_coroutine,
    local_bindings,
    root_name,
    walk_function_body,
)

#: Bumped whenever the index layout or seed semantics change; part of
#: every cache fingerprint (together with the lint-package code salt).
INDEX_SCHEMA = 1

#: Sentinel stored in :attr:`FileIndex.noqa` for a bare, rule-less
#: suppression comment (one that silences every rule on its line).
NOQA_ALL = "*"

#: Seed kind -> the rule ids whose line suppression sanctions the seed.
#: A seed on a line suppressed for any of its family's rules is dropped
#: before it can enter a fixpoint, so a justified per-file suppression
#: silences the interprocedural generalization too.
SUPPRESSION_FAMILIES = {
    "taint": frozenset({"R001", "R101"}),
    "io": frozenset({"R004", "R104"}),
    "shared": frozenset({"R002", "R102", "R104"}),
    "self": frozenset({"R002", "R102"}),
}

_CLOCK_CALLS = {
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

_IO_CALLS = {"print", "open", "input"}

_MUTATORS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "sort",
    "reverse",
}


@dataclass(frozen=True)
class Seed:
    """One line-level fact a fixpoint can grow from."""

    lineno: int
    desc: str


@dataclass(frozen=True)
class CallSite:
    """One syntactic call inside a function body.

    ``ref`` is the unresolved callee reference: ``("name", f)`` for a
    bare-name call, ``("attr", owner, f)`` for ``owner.f(...)``, or
    ``("self", f)`` for a call on the enclosing method's first
    parameter. Resolution to a :class:`FunctionInfo` happens in the
    project phase (:mod:`repro.lint.callgraph`).
    """

    lineno: int
    ref: Tuple[str, ...]
    discarded: bool = False
    delegated: bool = False


@dataclass(frozen=True)
class FunctionInfo:
    """Everything the project phase knows about one function."""

    qualname: str
    name: str
    lineno: int
    class_name: Optional[str]
    first_param: Optional[str]
    is_program: bool
    calls: Tuple[CallSite, ...] = ()
    taint_seeds: Tuple[Seed, ...] = ()
    io_seeds: Tuple[Seed, ...] = ()
    shared_seeds: Tuple[Seed, ...] = ()
    self_seeds: Tuple[Seed, ...] = ()
    return_taint_direct: bool = False
    return_taint_calls: Tuple[Tuple[str, ...], ...] = ()
    dead_yield_loops: Tuple[Seed, ...] = ()


@dataclass(frozen=True)
class ClassInfo:
    name: str
    lineno: int
    bases: Tuple[str, ...]
    methods: Tuple[str, ...]


@dataclass(frozen=True)
class FileIndex:
    """The distilled, pickleable summary of one source file."""

    display: str
    role: Optional[str]
    module: str
    functions: Tuple[FunctionInfo, ...] = ()
    classes: Tuple[ClassInfo, ...] = ()
    imports: Mapping[str, str] = field(default_factory=dict)
    noqa: Mapping[int, Tuple[str, ...]] = field(default_factory=dict)

    def suppresses(self, line: int, rule_id: str) -> bool:
        rules = self.noqa.get(line)
        if rules is None:
            return False
        return NOQA_ALL in rules or rule_id in rules


def module_name(path: Path) -> str:
    """The dotted module name ``path`` would import as.

    Walks up while ``__init__.py`` exists, so ``src/repro/lint/index.py``
    maps to ``repro.lint.index``. A standalone file (fixtures) maps to
    its stem.
    """
    path = Path(path).resolve()
    if path.stem == "__init__":
        parts: List[str] = []
        parent = path.parent
        if not (parent / "__init__.py").exists():  # bare __init__.py
            return parent.name
    else:
        parts = [path.stem]
        parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _package_of(module: str, is_init: bool) -> str:
    if is_init:
        return module
    return module.rpartition(".")[0]


def _base_names(cls: ast.ClassDef) -> Tuple[str, ...]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def _nondet_call_desc(call: ast.Call) -> Optional[str]:
    """The R001-style nondeterminism description for a call, if any."""
    dotted = dotted_call(call)
    if dotted is not None:
        owner, attr = dotted
        if owner == "random" and attr != "Random":
            return f"random.{attr}()"
        if owner == "random" and attr == "Random" and not call.args:
            return "random.Random() without a seed"
        if attr in _CLOCK_CALLS.get(owner, ()):
            return f"{owner}.{attr}()"
    if (
        isinstance(call.func, ast.Name)
        and call.func.id == "id"
        and call.args
    ):
        return "id(...)"
    return None


def _call_ref(
    call: ast.Call, first_param: Optional[str]
) -> Optional[Tuple[str, ...]]:
    func = call.func
    if isinstance(func, ast.Name):
        return ("name", func.id)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if first_param is not None and func.value.id == first_param:
            return ("self", func.attr)
        return ("attr", func.value.id, func.attr)
    return None


class _Suppressions:
    """Line -> suppressed rule names, parsed once per file."""

    def __init__(self, noqa: Mapping[int, Tuple[str, ...]]) -> None:
        self.noqa = noqa

    def sanctions(self, line: int, family: str) -> bool:
        rules = self.noqa.get(line)
        if rules is None:
            return False
        if NOQA_ALL in rules:
            return True
        return bool(set(rules) & SUPPRESSION_FAMILIES[family])


# -- local return-taint dataflow ---------------------------------------------


class _ReturnTaint:
    """Does ``fn``'s return value derive from a nondet seed or a callee?

    A tiny forward dataflow over the function body: local names become
    tainted by assignments whose right-hand side contains a seed call,
    a call to some (yet unresolved) callee, or an already-tainted name.
    The body is scanned twice so loop-carried flows settle. The result
    is symbolic in the callees: ``direct`` (a seed reaches a return)
    plus the set of call refs whose return value reaches a return —
    the project-phase fixpoint substitutes real taint verdicts for
    those symbols.
    """

    def __init__(
        self,
        fn: ast.AST,
        first_param: Optional[str],
        suppressions: _Suppressions,
    ) -> None:
        self.fn = fn
        self.first_param = first_param
        self.suppressions = suppressions
        self.env: Dict[str, Tuple[bool, FrozenSet[Tuple[str, ...]]]] = {}
        self.direct = False
        self.refs: Set[Tuple[str, ...]] = set()

    def run(self) -> Tuple[bool, Tuple[Tuple[str, ...], ...]]:
        body = getattr(self.fn, "body", [])
        for _ in range(2):  # two passes settle loop-carried assignments
            self._visit_block(body)
        return self.direct, tuple(sorted(self.refs))

    def _expr_taint(
        self, expr: ast.AST
    ) -> Tuple[bool, FrozenSet[Tuple[str, ...]]]:
        direct = False
        refs: Set[Tuple[str, ...]] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                desc = _nondet_call_desc(node)
                line = getattr(node, "lineno", 0)
                if desc is not None:
                    if not self.suppressions.sanctions(line, "taint"):
                        direct = True
                    continue
                ref = _call_ref(node, self.first_param)
                if ref is not None:
                    refs.add(ref)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                got = self.env.get(node.id)
                if got is not None:
                    direct = direct or got[0]
                    refs |= got[1]
        return direct, frozenset(refs)

    def _bind(self, target: ast.AST, taint) -> None:
        if isinstance(target, ast.Name):
            old = self.env.get(target.id, (False, frozenset()))
            self.env[target.id] = (old[0] or taint[0], old[1] | taint[1])
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)

    def _visit_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.Assign):
                taint = self._expr_taint(stmt.value)
                for target in stmt.targets:
                    self._bind(target, taint)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._bind(stmt.target, self._expr_taint(stmt.value))
            elif isinstance(stmt, ast.AugAssign):
                self._bind(stmt.target, self._expr_taint(stmt.value))
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind(stmt.target, self._expr_taint(stmt.iter))
                self._visit_block(stmt.body)
                self._visit_block(stmt.orelse)
            elif isinstance(stmt, (ast.While, ast.If)):
                if isinstance(stmt, ast.While):
                    pass  # the test's taint does not flow to values
                self._visit_block(stmt.body)
                self._visit_block(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._bind(
                            item.optional_vars,
                            self._expr_taint(item.context_expr),
                        )
                self._visit_block(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._visit_block(stmt.body)
                for handler in stmt.handlers:
                    self._visit_block(handler.body)
                self._visit_block(stmt.orelse)
                self._visit_block(stmt.finalbody)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                direct, refs = self._expr_taint(stmt.value)
                self.direct = self.direct or direct
                self.refs |= refs
            elif isinstance(stmt, ast.Expr):
                # A bare expression cannot flow to the return value, but
                # walruses inside it can bind.
                for node in ast.walk(stmt):
                    if isinstance(node, ast.NamedExpr):
                        self._bind(
                            node.target, self._expr_taint(node.value)
                        )


# -- dead-yield loop detection -----------------------------------------------


def _is_constant(test: ast.AST, value: bool) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value) is value


def _count_yields(node: ast.AST) -> int:
    count = 0
    for inner in ast.walk(node):
        if isinstance(inner, (ast.Yield, ast.YieldFrom)):
            count += 1
    return count


def _live_yields(stmts: Sequence[ast.stmt]) -> int:
    """Yields in ``stmts`` reachable under constant-condition pruning."""
    live = 0
    for stmt in stmts:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(stmt, ast.If):
            if _is_constant(stmt.test, False):
                live += _live_yields(stmt.orelse)
            elif _is_constant(stmt.test, True):
                live += _live_yields(stmt.body)
            else:
                live += _live_yields(stmt.body) + _live_yields(stmt.orelse)
            live += _count_yields(stmt.test)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            live += _live_yields(stmt.body) + _live_yields(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            live += _live_yields(stmt.body) + _live_yields(stmt.orelse)
            live += _live_yields(stmt.finalbody)
            for handler in stmt.handlers:
                live += _live_yields(handler.body)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            live += _live_yields(stmt.body)
        else:
            live += _count_yields(stmt)
    return live


def _dead_yield_loops(fn: ast.AST) -> Iterator[Seed]:
    for node in walk_function_body(fn):
        if not isinstance(node, ast.While):
            continue
        if not _is_constant(node.test, True):
            continue
        total = sum(_count_yields(stmt) for stmt in node.body)
        if total == 0:
            continue  # R003's yield-free spin, not ours
        if _live_yields(node.body) == 0:
            yield Seed(
                lineno=node.lineno,
                desc=(
                    "constant-true loop whose only yields sit in "
                    "unreachable branches"
                ),
            )


# -- the indexer -------------------------------------------------------------


def _collect_imports(
    tree: ast.Module, module: str, is_init: bool
) -> Dict[str, str]:
    package = _package_of(module, is_init)
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level > 0:
                base_parts = package.split(".") if package else []
                drop = node.level - 1
                if drop:
                    base_parts = base_parts[: len(base_parts) - drop]
                base = ".".join(base_parts)
            else:
                base = ""
            target = node.module or ""
            if base and target:
                target = f"{base}.{target}"
            elif base:
                target = base
            for alias in node.names:
                if alias.name == "*":
                    continue
                full = f"{target}.{alias.name}" if target else alias.name
                imports[alias.asname or alias.name] = full
    return imports


def _index_function(
    fn: ast.AST,
    qualname: str,
    class_name: Optional[str],
    suppressions: _Suppressions,
    parents: Mapping[ast.AST, ast.AST],
) -> FunctionInfo:
    args = getattr(fn, "args", None)
    first_param = None
    if class_name is not None and args is not None and args.args:
        first_param = args.args[0].arg
    bound = local_bindings(fn)

    calls: List[CallSite] = []
    taint_seeds: List[Seed] = []
    io_seeds: List[Seed] = []
    shared_seeds: List[Seed] = []
    self_seeds: List[Seed] = []

    def classify_store(root: Optional[str], line: int, desc: str) -> None:
        if root is None:
            return
        if first_param is not None and root == first_param:
            if not suppressions.sanctions(line, "self"):
                self_seeds.append(Seed(line, desc))
        elif root not in bound:
            if not suppressions.sanctions(line, "shared"):
                shared_seeds.append(Seed(line, desc))

    for node in walk_function_body(fn):
        line = getattr(node, "lineno", getattr(fn, "lineno", 1))
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            kind = "global" if isinstance(node, ast.Global) else "nonlocal"
            if not suppressions.sanctions(line, "shared"):
                shared_seeds.append(
                    Seed(line, f"declares {kind} {', '.join(node.names)}")
                )
        elif isinstance(node, ast.Call):
            desc = _nondet_call_desc(node)
            if desc is not None:
                if not suppressions.sanctions(line, "taint"):
                    taint_seeds.append(Seed(line, desc))
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _IO_CALLS:
                if not suppressions.sanctions(line, "io"):
                    io_seeds.append(Seed(line, f"{func.id}(...)"))
                continue
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                classify_store(
                    root_name(func.value), line, f".{func.attr}(...) call"
                )
            ref = _call_ref(node, first_param)
            if ref is not None:
                parent = parents.get(node)
                discarded = isinstance(parent, ast.Expr)
                delegated = isinstance(parent, ast.YieldFrom)
                calls.append(
                    CallSite(
                        lineno=line,
                        ref=ref,
                        discarded=discarded,
                        delegated=delegated,
                    )
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    classify_store(
                        root_name(target.value), line, "store into"
                    )

    direct, refs = _ReturnTaint(fn, first_param, suppressions).run()
    is_program = is_program_coroutine(fn)
    return FunctionInfo(
        qualname=qualname,
        name=fn.name,
        lineno=fn.lineno,
        class_name=class_name,
        first_param=first_param,
        is_program=is_program,
        calls=tuple(calls),
        taint_seeds=tuple(taint_seeds),
        io_seeds=tuple(io_seeds),
        shared_seeds=tuple(shared_seeds),
        self_seeds=tuple(self_seeds),
        return_taint_direct=direct,
        return_taint_calls=refs,
        dead_yield_loops=tuple(_dead_yield_loops(fn)) if is_program else (),
    )


def build_file_index(module_ctx) -> FileIndex:
    """Distill a parsed :class:`repro.lint.engine.ModuleContext`."""
    tree = module_ctx.tree
    path = Path(module_ctx.path)
    dotted = module_name(path)
    is_init = path.stem == "__init__"

    noqa: Dict[int, Tuple[str, ...]] = {}
    for line in range(1, len(module_ctx.lines) + 1):
        rules = module_ctx.suppressions_on(line)
        if rules is None:
            continue
        noqa[line] = (NOQA_ALL,) if not rules else tuple(sorted(rules))
    suppressions = _Suppressions(noqa)

    functions: List[FunctionInfo] = []
    classes: List[ClassInfo] = []
    parents = module_ctx.parents

    def walk_defs(
        body: Sequence[ast.stmt], prefix: str, class_name: Optional[str]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                functions.append(
                    _index_function(
                        stmt, qualname, class_name, suppressions, parents
                    )
                )
                walk_defs(stmt.body, f"{qualname}.", None)
            elif isinstance(stmt, ast.ClassDef):
                methods = tuple(
                    inner.name
                    for inner in stmt.body
                    if isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                )
                classes.append(
                    ClassInfo(
                        name=stmt.name,
                        lineno=stmt.lineno,
                        bases=_base_names(stmt),
                        methods=methods,
                    )
                )
                walk_defs(stmt.body, f"{stmt.name}.", stmt.name)

    walk_defs(tree.body, "", None)
    return FileIndex(
        display=module_ctx.display_path,
        role=module_ctx.role,
        module=dotted,
        functions=tuple(functions),
        classes=tuple(classes),
        imports=_collect_imports(tree, dotted, is_init),
        noqa=noqa,
    )
