"""Exception hierarchy and the stable error taxonomy.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch the whole family with a single ``except`` clause while still
being able to distinguish specification errors (bad operations sent to an
object) from runtime errors (scheduling a crashed process) and analysis
errors (asking for the valency of an unreachable configuration).

On top of the exception classes sits the **error taxonomy**: a closed
set of stable error codes (:data:`ERROR_CODES`), one classification
function (:func:`classify_error`) and one table mapping each code to
its HTTP status (consumed by :mod:`repro.serve`) and its CLI exit code
(consumed by :mod:`repro.cli`); :func:`error_report` folds any caught
exception into the standard :class:`repro.reports.Report` envelope with
the code carried in ``data["error_code"]`` and in the error finding —
one table, three consumers (server, CLI, API callers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class SpecificationError(ReproError):
    """An object was constructed with invalid parameters.

    Example: an ``n``-PAC object with ``n < 1``, or an ``(n, k)``-SA
    object with ``k < 1``.
    """


class InvalidOperationError(ReproError):
    """An operation was applied that the target object does not support.

    This covers unknown operation names as well as out-of-range
    arguments, e.g. a ``PROPOSE(v, i)`` on an ``n``-PAC object with a
    label ``i`` outside ``[1..n]``.
    """


class ProtocolError(ReproError):
    """A process automaton violated the runtime's step discipline.

    Raised, for example, when a process is asked for its next action
    after it has already decided, or when a generator-based process
    yields something that is not an action.
    """


class SchedulingError(ReproError):
    """The scheduler made an illegal choice.

    Raised when a scheduler selects a process that has crashed, decided,
    or does not exist, or when no process is enabled but a step was
    requested anyway.
    """


class AnalysisError(ReproError):
    """An analysis (valency, linearizability, exploration) was misused.

    Example: requesting the decision set of a configuration that does
    not belong to the explored system, or exceeding an explicit
    exploration budget configured with ``strict=True``.
    """


class ExplorationBudgetExceeded(AnalysisError):
    """A bounded exploration ran out of its state or depth budget.

    The explorer raises this only in strict mode; by default it records
    that the result is a *bound* rather than an exact answer.
    """


class ReplayDivergenceError(ReproError):
    """A strict scripted replay diverged from its script.

    Raised by :class:`~repro.objects.base.ScriptedOracle` (and the
    replay helpers built on it) when a replayed run asks for more
    choices than the script contains, or when a scripted choice is out
    of range for the outcomes actually offered. Silent fallback past
    the end of a counterexample script is exactly how a replayed
    counterexample stops being the counterexample the explorer found,
    so strict replays fail loudly instead.
    """


class NotLinearizableError(AnalysisError):
    """A history expected to be linearizable was proven not to be.

    Raised by the ``require_linearizable`` convenience wrapper; the
    underlying checker itself returns a verdict object instead of
    raising.
    """


class InvalidRequestError(ReproError):
    """A request to the API/serve surface failed validation.

    Raised while building one of the typed request objects in
    :mod:`repro.api.requests` (unknown command, wrong field type,
    out-of-range value) — before any engine runs. The server maps it to
    HTTP 400, the CLI to exit code 2.
    """


class CacheIntegrityError(AnalysisError):
    """A warm cache entry failed its digest validation.

    Raised when a rehydrated payload does not reproduce the digest
    recorded at store time — the entry is stale, corrupt, or was
    written by an incompatible serializer, and using it could silently
    change a verdict. (Home base for
    :mod:`repro.analysis.cache`, which re-exports it.)
    """


class ServerOverloadedError(ReproError):
    """The serving layer refused a submission it cannot queue.

    Raised by :class:`repro.serve.jobs.JobManager` when the bounded job
    queue is full or the server is draining for shutdown; mapped to
    HTTP 429. Back off and resubmit.
    """


class KernelUnavailableError(AnalysisError):
    """A specific exploration backend was requested but cannot run.

    Raised by :func:`repro.analysis.kernel.select` when ``compiled`` is
    demanded and the accelerated extension is not built (the message
    carries the captured build log when one exists). The server maps it
    to HTTP 503 — the request is fine, this deployment just cannot
    serve it — and the CLI to exit code 3.
    """


# -- the stable error taxonomy ----------------------------------------------


@dataclass(frozen=True)
class ErrorClass:
    """One row of the taxonomy: a stable code and its three renderings."""

    code: str
    http_status: int
    exit_code: int
    description: str


#: The closed code set, in severity-agnostic alphabetical order. Codes
#: are append-only: consumers (CI greps, dashboards, clients switching
#: on ``data["error_code"]``) rely on existing names never changing.
ERROR_TABLE: Tuple[ErrorClass, ...] = (
    ErrorClass(
        "BUDGET_EXCEEDED",
        422,
        4,
        "a strict exploration/fuzz budget was exhausted before an answer",
    ),
    ErrorClass(
        "CACHE_INTEGRITY",
        500,
        6,
        "a warm cache entry failed digest validation (stale or corrupt)",
    ),
    ErrorClass(
        "INTERNAL",
        500,
        1,
        "an engine failed in a way the taxonomy does not name",
    ),
    ErrorClass(
        "INVALID_REQUEST",
        400,
        2,
        "the request failed validation before any engine ran",
    ),
    ErrorClass(
        "KERNEL_UNAVAILABLE",
        503,
        3,
        "a requested exploration backend is not built on this host",
    ),
    ErrorClass(
        "OVERLOADED",
        429,
        7,
        "the server's bounded job queue is full or draining",
    ),
    ErrorClass(
        "REPLAY_DIVERGENCE",
        500,
        5,
        "a strict counterexample replay diverged from its script",
    ),
)

#: code → :class:`ErrorClass` (the lookup the three consumers share).
ERROR_CODES: Mapping[str, ErrorClass] = {
    entry.code: entry for entry in ERROR_TABLE
}


def classify_error(exc: BaseException) -> str:
    """The taxonomy code for ``exc`` (total: unknowns are INTERNAL)."""
    if isinstance(exc, InvalidRequestError):
        return "INVALID_REQUEST"
    if isinstance(exc, (SpecificationError, InvalidOperationError)):
        return "INVALID_REQUEST"
    if isinstance(exc, ExplorationBudgetExceeded):
        return "BUDGET_EXCEEDED"
    if isinstance(exc, CacheIntegrityError):
        return "CACHE_INTEGRITY"
    if isinstance(exc, KernelUnavailableError):
        return "KERNEL_UNAVAILABLE"
    if isinstance(exc, ReplayDivergenceError):
        return "REPLAY_DIVERGENCE"
    if isinstance(exc, ServerOverloadedError):
        return "OVERLOADED"
    return "INTERNAL"


def http_status_for(code: str) -> int:
    """The HTTP status the server answers with for ``code``."""
    entry = ERROR_CODES.get(code)
    return entry.http_status if entry is not None else 500


def exit_code_for(code: str) -> int:
    """The process exit code the CLI uses for ``code``."""
    entry = ERROR_CODES.get(code)
    return entry.exit_code if entry is not None else 1


def error_report(
    command: str,
    exc: BaseException,
    detail: Optional[str] = None,
) -> Any:
    """Fold a caught exception into the standard Report envelope.

    ``status`` is ``"error"``, the exit code comes from the taxonomy
    table, and the code rides in ``data["error_code"]`` plus the single
    error finding's ``data`` — so the CLI, the server, and API callers
    all read the same classification from the same places.
    """
    from .reports import Finding, Report

    code = classify_error(exc)
    message = detail if detail is not None else str(exc)
    line = f"{code}: {message}"
    return Report(
        command=command,
        status="error",
        exit_code=exit_code_for(code),
        summary=line,
        body=(line,),
        findings=(
            Finding(
                "error",
                subject=code,
                detail=message,
                data={"error_code": code, "exception": type(exc).__name__},
            ),
        ),
        data={"error_code": code},
    )
