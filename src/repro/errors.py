"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch the whole family with a single ``except`` clause while still
being able to distinguish specification errors (bad operations sent to an
object) from runtime errors (scheduling a crashed process) and analysis
errors (asking for the valency of an unreachable configuration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class SpecificationError(ReproError):
    """An object was constructed with invalid parameters.

    Example: an ``n``-PAC object with ``n < 1``, or an ``(n, k)``-SA
    object with ``k < 1``.
    """


class InvalidOperationError(ReproError):
    """An operation was applied that the target object does not support.

    This covers unknown operation names as well as out-of-range
    arguments, e.g. a ``PROPOSE(v, i)`` on an ``n``-PAC object with a
    label ``i`` outside ``[1..n]``.
    """


class ProtocolError(ReproError):
    """A process automaton violated the runtime's step discipline.

    Raised, for example, when a process is asked for its next action
    after it has already decided, or when a generator-based process
    yields something that is not an action.
    """


class SchedulingError(ReproError):
    """The scheduler made an illegal choice.

    Raised when a scheduler selects a process that has crashed, decided,
    or does not exist, or when no process is enabled but a step was
    requested anyway.
    """


class AnalysisError(ReproError):
    """An analysis (valency, linearizability, exploration) was misused.

    Example: requesting the decision set of a configuration that does
    not belong to the explored system, or exceeding an explicit
    exploration budget configured with ``strict=True``.
    """


class ExplorationBudgetExceeded(AnalysisError):
    """A bounded exploration ran out of its state or depth budget.

    The explorer raises this only in strict mode; by default it records
    that the result is a *bound* rather than an exact answer.
    """


class ReplayDivergenceError(ReproError):
    """A strict scripted replay diverged from its script.

    Raised by :class:`~repro.objects.base.ScriptedOracle` (and the
    replay helpers built on it) when a replayed run asks for more
    choices than the script contains, or when a scripted choice is out
    of range for the outcomes actually offered. Silent fallback past
    the end of a counterexample script is exactly how a replayed
    counterexample stops being the counterexample the explorer found,
    so strict replays fail loudly instead.
    """


class NotLinearizableError(AnalysisError):
    """A history expected to be linearizable was proven not to be.

    Raised by the ``require_linearizable`` convenience wrapper; the
    underlying checker itself returns a verdict object instead of
    raising.
    """
