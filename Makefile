# Convenience targets for the repro library.

.PHONY: install kernel-ext test bench bench-perf bench-serve experiments examples lint fuzz trace-smoke serve serve-smoke verify clean

install:
	pip install -e . --no-build-isolation

# Build the optional accelerated kernel extension in place (best
# effort: exits non-zero without a C toolchain but never breaks the
# pure-Python default backend).
kernel-ext:
	python -m repro.analysis.kernel._build

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Refresh the machine-readable perf baseline (BENCH_perf.json).
# REPRO_PERF_SCALE=tiny shrinks the instances (CI smoke).
bench-perf:
	pytest benchmarks/bench_perf_core.py benchmarks/bench_perf_substrates.py \
		benchmarks/bench_perf_parallel.py benchmarks/bench_perf_fuzz.py \
		benchmarks/bench_perf_obs.py benchmarks/bench_perf_lint.py \
		benchmarks/bench_perf_kernel.py benchmarks/bench_perf_serve.py \
		--benchmark-disable -q
	@echo "--- BENCH_perf.json ---"
	@cat BENCH_perf.json

# Regenerate EXPERIMENTS.md's source rows (benchmarks/results.log).
experiments:
	rm -f benchmarks/results.log
	pytest benchmarks/ --benchmark-only -q
	@echo "--- regenerated rows ---"
	@cat benchmarks/results.log

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null && echo OK; done

# Protocol-aware static analysis (replayability contract R001-R006
# plus the interprocedural R007/R10x family).
lint:
	python -m repro lint

# Seeded fuzz smoke: a doomed candidate must be caught, shrunk, and
# replayed; a correct one must survive (same campaigns CI runs).
fuzz:
	python -m repro fuzz --candidate "one 2-SA" --seed 1234 --budget 300
	python -m repro fuzz --candidate "2-consensus from queue" --seed 1234 --budget 300

# Observability smoke: record a trace, validate it against the JSONL
# schema, render it through `repro report`, and check that the metrics
# snapshot embedded in the report is byte-identical across --jobs.
trace-smoke:
	rm -rf /tmp/repro-trace-smoke && mkdir -p /tmp/repro-trace-smoke
	python -m repro check-algorithm2 --n 2 --trace /tmp/repro-trace-smoke/check.jsonl
	python -c "from repro.obs.schema import load_trace; \
		records = load_trace('/tmp/repro-trace-smoke/check.jsonl'); \
		print(f'trace OK: {len(records)} records')"
	python -m repro report /tmp/repro-trace-smoke/check.jsonl
	python -m repro check-algorithm2 --n 2 --jobs 1 --format json > /tmp/repro-trace-smoke/j1.json
	python -m repro check-algorithm2 --n 2 --jobs 2 --format json > /tmp/repro-trace-smoke/j2.json
	python -c "import json; \
		j1 = json.load(open('/tmp/repro-trace-smoke/j1.json')); \
		j2 = json.load(open('/tmp/repro-trace-smoke/j2.json')); \
		assert j1['metrics'] == j2['metrics'], (j1['metrics'], j2['metrics']); \
		assert j1['body'] == j2['body'] and j1['summary'] == j2['summary']; \
		print('metrics snapshots and rendered output identical across --jobs 1/2')"

# Run the verification service on the default port (docs/serve.md).
serve:
	python -m repro serve

# Serve end-to-end harness: boot an ephemeral server, byte-diff served
# reports against direct api calls, replay the workload for warm hits,
# assert single-flight coalescing under a concurrent burst, and check
# the NDJSON event stream (same harness CI's serve-smoke job runs).
serve-smoke:
	python -m repro serve-smoke

# Refresh the serve_load row of BENCH_perf.json: thousands of
# concurrent clients in a hot/cold/fuzz mix against a live server,
# recording latency percentiles and coalesce/cache hit-rates.
# REPRO_PERF_SCALE=tiny shrinks the fleet (CI smoke).
bench-serve:
	pytest benchmarks/bench_perf_serve.py --benchmark-disable -q
	@echo "--- BENCH_perf.json ---"
	@cat BENCH_perf.json

# The reproduction smoke-check: every CLI command must exit 0.
verify:
	python -m repro demo
	python -m repro check-algorithm2 --n 3
	python -m repro refute
	python -m repro separation --n 2
	python -m repro ledger --n 2
	python -m repro power

clean:
	rm -rf build src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} \;
